#include "plan/logical_plan.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace robopt {

std::string_view ToString(Topology topology) {
  switch (topology) {
    case Topology::kPipeline: return "pipeline";
    case Topology::kJuncture: return "juncture";
    case Topology::kReplicate: return "replicate";
    case Topology::kLoop: return "loop";
  }
  return "unknown";
}

OperatorId LogicalPlan::Add(LogicalOperator op) {
  ROBOPT_CHECK(ops_.size() < kMaxPlanOperators);
  op.id = static_cast<OperatorId>(ops_.size());
  ops_.push_back(std::move(op));
  parents_.emplace_back();
  children_.emplace_back();
  side_parents_.emplace_back();
  side_children_.emplace_back();
  loop_dirty_ = true;
  return ops_.back().id;
}

OperatorId LogicalPlan::Add(LogicalOpKind kind, std::string name,
                            UdfComplexity udf, double selectivity) {
  LogicalOperator op;
  op.kind = kind;
  op.name = std::move(name);
  op.udf = udf;
  op.selectivity = selectivity;
  return Add(std::move(op));
}

void LogicalPlan::Connect(OperatorId from, OperatorId to) {
  ROBOPT_CHECK(from < ops_.size() && to < ops_.size());
  children_[from].push_back(to);
  parents_[to].push_back(from);
  loop_dirty_ = true;
}

void LogicalPlan::ConnectBroadcast(OperatorId from, OperatorId to) {
  ROBOPT_CHECK(from < ops_.size() && to < ops_.size());
  side_children_[from].push_back(to);
  side_parents_[to].push_back(from);
  loop_dirty_ = true;
}

std::vector<OperatorId> LogicalPlan::AllParents(OperatorId id) const {
  std::vector<OperatorId> out = parents_[id];
  out.insert(out.end(), side_parents_[id].begin(), side_parents_[id].end());
  return out;
}

std::vector<OperatorId> LogicalPlan::AllChildren(OperatorId id) const {
  std::vector<OperatorId> out = children_[id];
  out.insert(out.end(), side_children_[id].begin(), side_children_[id].end());
  return out;
}

Status LogicalPlan::Validate() const {
  if (ops_.empty()) {
    return Status::InvalidArgument("plan has no operators");
  }
  for (const LogicalOperator& op : ops_) {
    const size_t num_in = parents_[op.id].size();
    const size_t num_out = children_[op.id].size();
    if (IsSource(op.kind)) {
      if (num_in != 0) {
        return Status::InvalidArgument("source " + op.name + " has inputs");
      }
      if (op.source_cardinality <= 0) {
        return Status::InvalidArgument("source " + op.name +
                                       " lacks a declared cardinality");
      }
    } else if (num_in == 0) {
      return Status::InvalidArgument("operator " + op.name + " has no input");
    }
    if (IsBinary(op.kind) && num_in != 2) {
      return Status::InvalidArgument("binary operator " + op.name +
                                     " must have exactly two inputs");
    }
    if (!IsBinary(op.kind) && !IsSource(op.kind) && num_in > 1 &&
        op.kind != LogicalOpKind::kLoopBegin) {
      return Status::InvalidArgument("operator " + op.name +
                                     " has too many inputs");
    }
    if (IsSink(op.kind) && num_out != 0) {
      return Status::InvalidArgument("sink " + op.name + " has outputs");
    }
    if (op.kind == LogicalOpKind::kLoopEnd) {
      if (op.loop_begin == kInvalidOperatorId || op.loop_begin >= ops_.size() ||
          ops_[op.loop_begin].kind != LogicalOpKind::kLoopBegin) {
        return Status::InvalidArgument("LoopEnd " + op.name +
                                       " is not paired with a LoopBegin");
      }
    }
    if (op.kind == LogicalOpKind::kLoopBegin && op.loop_iterations <= 0) {
      return Status::InvalidArgument("LoopBegin " + op.name +
                                     " needs loop_iterations > 0");
    }
  }
  // Acyclicity: a full topological order must exist.
  if (TopologicalOrder().size() != ops_.size()) {
    return Status::InvalidArgument("plan contains a cycle");
  }
  return Status::OK();
}

std::vector<OperatorId> LogicalPlan::SourceIds() const {
  std::vector<OperatorId> out;
  for (const LogicalOperator& op : ops_) {
    if (parents_[op.id].empty() && side_parents_[op.id].empty()) {
      out.push_back(op.id);
    }
  }
  return out;
}

std::vector<OperatorId> LogicalPlan::SinkIds() const {
  std::vector<OperatorId> out;
  for (const LogicalOperator& op : ops_) {
    if (children_[op.id].empty() && side_children_[op.id].empty()) {
      out.push_back(op.id);
    }
  }
  return out;
}

std::vector<OperatorId> LogicalPlan::TopologicalOrder() const {
  std::vector<int> pending(ops_.size());
  std::deque<OperatorId> ready;
  for (const LogicalOperator& op : ops_) {
    pending[op.id] = static_cast<int>(parents_[op.id].size() +
                                      side_parents_[op.id].size());
    if (pending[op.id] == 0) ready.push_back(op.id);
  }
  std::vector<OperatorId> order;
  order.reserve(ops_.size());
  while (!ready.empty()) {
    OperatorId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (OperatorId child : children_[id]) {
      if (--pending[child] == 0) ready.push_back(child);
    }
    for (OperatorId child : side_children_[id]) {
      if (--pending[child] == 0) ready.push_back(child);
    }
  }
  return order;
}

void LogicalPlan::ComputeLoopMembership() const {
  if (!loop_dirty_) return;
  in_loop_.assign(ops_.size(), 0);
  loop_iters_.assign(ops_.size(), 1);
  // An operator is in a loop body if it is forward-reachable from a LoopBegin
  // and its matching LoopEnd is forward-reachable from the operator.
  for (const LogicalOperator& op : ops_) {
    if (op.kind != LogicalOpKind::kLoopEnd) continue;
    const OperatorId begin = op.loop_begin;
    if (begin == kInvalidOperatorId) continue;
    // Reachable-from-begin set.
    std::vector<uint8_t> from_begin(ops_.size(), 0);
    std::deque<OperatorId> queue = {begin};
    from_begin[begin] = 1;
    while (!queue.empty()) {
      OperatorId cur = queue.front();
      queue.pop_front();
      for (OperatorId child : AllChildren(cur)) {
        if (!from_begin[child]) {
          from_begin[child] = 1;
          queue.push_back(child);
        }
      }
    }
    // Backward from the end, restricted to from_begin.
    std::vector<uint8_t> to_end(ops_.size(), 0);
    queue = {op.id};
    to_end[op.id] = 1;
    while (!queue.empty()) {
      OperatorId cur = queue.front();
      queue.pop_front();
      for (OperatorId parent : AllParents(cur)) {
        if (!to_end[parent] && from_begin[parent]) {
          to_end[parent] = 1;
          queue.push_back(parent);
        }
      }
    }
    const int iterations = std::max(1, ops_[begin].loop_iterations);
    for (size_t i = 0; i < ops_.size(); ++i) {
      if (from_begin[i] && to_end[i]) {
        in_loop_[i] = 1;
        loop_iters_[i] *= iterations;  // Nested loops multiply.
      }
    }
  }
  loop_dirty_ = false;
}

bool LogicalPlan::InLoop(OperatorId id) const {
  ComputeLoopMembership();
  return in_loop_[id] != 0;
}

int LogicalPlan::LoopIterations(OperatorId id) const {
  ComputeLoopMembership();
  return loop_iters_[id];
}

std::vector<OperatorId> LogicalPlan::LoopBody(OperatorId begin) const {
  ROBOPT_CHECK(begin < ops_.size() &&
               ops_[begin].kind == LogicalOpKind::kLoopBegin);
  OperatorId end = kInvalidOperatorId;
  for (const LogicalOperator& op : ops_) {
    if (op.kind == LogicalOpKind::kLoopEnd && op.loop_begin == begin) {
      end = op.id;
      break;
    }
  }
  ROBOPT_CHECK(end != kInvalidOperatorId);
  // Forward-reachable from begin AND backward-reachable from end.
  std::vector<uint8_t> from_begin(ops_.size(), 0);
  std::deque<OperatorId> queue = {begin};
  from_begin[begin] = 1;
  while (!queue.empty()) {
    OperatorId cur = queue.front();
    queue.pop_front();
    for (OperatorId child : AllChildren(cur)) {
      if (!from_begin[child]) {
        from_begin[child] = 1;
        queue.push_back(child);
      }
    }
  }
  std::vector<uint8_t> to_end(ops_.size(), 0);
  queue = {end};
  to_end[end] = 1;
  while (!queue.empty()) {
    OperatorId cur = queue.front();
    queue.pop_front();
    for (OperatorId parent : AllParents(cur)) {
      if (!to_end[parent] && from_begin[parent]) {
        to_end[parent] = 1;
        queue.push_back(parent);
      }
    }
  }
  std::vector<OperatorId> body;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (from_begin[i] && to_end[i]) body.push_back(static_cast<OperatorId>(i));
  }
  return body;
}

std::vector<Topology> LogicalPlan::OperatorTopologies() const {
  ComputeLoopMembership();
  std::vector<Topology> out(ops_.size(), Topology::kPipeline);
  for (const LogicalOperator& op : ops_) {
    if (in_loop_[op.id]) {
      out[op.id] = Topology::kLoop;
    } else if (parents_[op.id].size() >= 2) {
      out[op.id] = Topology::kJuncture;
    } else if (children_[op.id].size() >= 2) {
      out[op.id] = Topology::kReplicate;
    }
  }
  return out;
}

TopologyCounts LogicalPlan::CountTopologies() const {
  const std::vector<Topology> tags = OperatorTopologies();
  TopologyCounts counts;
  // Loops count once per LoopBegin; junctures/replicates once per tagged
  // operator; pipelines once per maximal chain of pipeline-tagged operators
  // (Fig. 3(a) yields 3 pipelines + 1 juncture).
  std::vector<uint8_t> visited(ops_.size(), 0);
  for (const LogicalOperator& op : ops_) {
    switch (tags[op.id]) {
      case Topology::kJuncture:
        ++counts.juncture;
        break;
      case Topology::kReplicate:
        ++counts.replicate;
        break;
      case Topology::kLoop:
        if (op.kind == LogicalOpKind::kLoopBegin) ++counts.loop;
        break;
      case Topology::kPipeline: {
        if (visited[op.id]) break;
        // Flood-fill the maximal pipeline segment containing `op`.
        std::deque<OperatorId> queue = {op.id};
        visited[op.id] = 1;
        while (!queue.empty()) {
          OperatorId cur = queue.front();
          queue.pop_front();
          for (OperatorId next : children_[cur]) {
            if (!visited[next] && tags[next] == Topology::kPipeline) {
              visited[next] = 1;
              queue.push_back(next);
            }
          }
          for (OperatorId prev : parents_[cur]) {
            if (!visited[prev] && tags[prev] == Topology::kPipeline) {
              visited[prev] = 1;
              queue.push_back(prev);
            }
          }
        }
        ++counts.pipeline;
        break;
      }
    }
  }
  return counts;
}

std::string LogicalPlan::DebugString() const {
  std::string out = "LogicalPlan (" + std::to_string(ops_.size()) + " ops)\n";
  for (const LogicalOperator& op : ops_) {
    out += "  o" + std::to_string(op.id) + " " + std::string(ToString(op.kind));
    if (!op.name.empty()) out += "(" + op.name + ")";
    out += "  parents:[";
    for (size_t i = 0; i < parents_[op.id].size(); ++i) {
      if (i > 0) out += ",";
      out += "o" + std::to_string(parents_[op.id][i]);
    }
    out += "]\n";
  }
  return out;
}

}  // namespace robopt
