#ifndef ROBOPT_PLAN_CARDINALITY_H_
#define ROBOPT_PLAN_CARDINALITY_H_

#include <vector>

#include "plan/logical_plan.h"

namespace robopt {

/// Per-operator input/output cardinalities, in tuples. The plan-vector
/// features of Section IV-A consume both; the paper injects *real*
/// cardinalities so that the optimizer comparison is not polluted by
/// estimation error — we mirror that by letting callers overwrite the
/// propagated values (see InjectOutputCardinality).
struct Cardinalities {
  /// Sum of input cardinalities per operator (binary operators add both).
  std::vector<double> input;
  /// Output cardinality per operator.
  std::vector<double> output;
};

/// Propagates cardinalities from the declared source cardinalities through
/// the DAG using each operator's selectivity. Rules:
///  - sources emit `source_cardinality`;
///  - Filter/Sample scale by selectivity; Map/Sort/etc. preserve;
///  - Join emits selectivity * max(left, right) (foreign-key-style join);
///  - Cartesian emits left * right; Union adds; ReduceBy/GroupBy/Distinct
///    scale by selectivity (distinct-keys ratio);
///  - Count/GlobalReduce emit 1;
///  - loops: LoopBegin/LoopEnd pass through (per-iteration flow).
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const LogicalPlan* plan) : plan_(plan) {}

  /// Runs the propagation. Call again after InjectOutputCardinality.
  Cardinalities Estimate() const;

  /// Forces the output cardinality of `id` to `tuples` in subsequent
  /// Estimate() calls (the paper's "real cardinalities injected" mode).
  void InjectOutputCardinality(OperatorId id, double tuples);

 private:
  const LogicalPlan* plan_;
  std::vector<std::pair<OperatorId, double>> injected_;
};

}  // namespace robopt

#endif  // ROBOPT_PLAN_CARDINALITY_H_
