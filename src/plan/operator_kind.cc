#include "plan/operator_kind.h"

namespace robopt {

std::string_view ToString(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kTextFileSource: return "TextFileSource";
    case LogicalOpKind::kCollectionSource: return "CollectionSource";
    case LogicalOpKind::kTableSource: return "TableSource";
    case LogicalOpKind::kFilter: return "Filter";
    case LogicalOpKind::kMap: return "Map";
    case LogicalOpKind::kFlatMap: return "FlatMap";
    case LogicalOpKind::kProject: return "Project";
    case LogicalOpKind::kSort: return "Sort";
    case LogicalOpKind::kDistinct: return "Distinct";
    case LogicalOpKind::kCount: return "Count";
    case LogicalOpKind::kSample: return "Sample";
    case LogicalOpKind::kCache: return "Cache";
    case LogicalOpKind::kJoin: return "Join";
    case LogicalOpKind::kUnion: return "Union";
    case LogicalOpKind::kCartesian: return "Cartesian";
    case LogicalOpKind::kReduceBy: return "ReduceBy";
    case LogicalOpKind::kGroupBy: return "GroupBy";
    case LogicalOpKind::kGlobalReduce: return "GlobalReduce";
    case LogicalOpKind::kLoopBegin: return "LoopBegin";
    case LogicalOpKind::kLoopEnd: return "LoopEnd";
    case LogicalOpKind::kBroadcast: return "Broadcast";
    case LogicalOpKind::kCollectionSink: return "CollectionSink";
    case LogicalOpKind::kFileSink: return "FileSink";
    case LogicalOpKind::kKindCount: break;
  }
  return "Unknown";
}

bool IsBinary(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kJoin:
    case LogicalOpKind::kUnion:
    case LogicalOpKind::kCartesian:
      return true;
    default:
      return false;
  }
}

bool IsSource(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kTextFileSource:
    case LogicalOpKind::kCollectionSource:
    case LogicalOpKind::kTableSource:
      return true;
    default:
      return false;
  }
}

bool IsSink(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kCollectionSink:
    case LogicalOpKind::kFileSink:
      return true;
    default:
      return false;
  }
}

std::string_view ToString(UdfComplexity complexity) {
  switch (complexity) {
    case UdfComplexity::kNone: return "none";
    case UdfComplexity::kLogarithmic: return "logarithmic";
    case UdfComplexity::kLinear: return "linear";
    case UdfComplexity::kQuadratic: return "quadratic";
    case UdfComplexity::kSuperQuadratic: return "super-quadratic";
  }
  return "unknown";
}

}  // namespace robopt
