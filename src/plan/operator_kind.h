#ifndef ROBOPT_PLAN_OPERATOR_KIND_H_
#define ROBOPT_PLAN_OPERATOR_KIND_H_

#include <cstdint>
#include <string_view>

namespace robopt {

/// Platform-agnostic logical operators, mirroring the Rheem operator set used
/// by the paper's running examples (Fig. 3) and its workloads (Table II).
enum class LogicalOpKind : uint8_t {
  // Sources.
  kTextFileSource = 0,  ///< Reads a text file into a collection of lines.
  kCollectionSource,    ///< Wraps an in-memory collection (driver-side).
  kTableSource,         ///< Reads a relational table (e.g., from Postgres).
  // Unary transformations.
  kFilter,    ///< Keeps tuples satisfying a predicate UDF.
  kMap,       ///< 1:1 transformation UDF.
  kFlatMap,   ///< 1:N transformation UDF (e.g., tokenization).
  kProject,   ///< Column projection (pushdown-friendly).
  kSort,      ///< Global sort.
  kDistinct,  ///< Duplicate elimination.
  kCount,     ///< Counts tuples; emits a single value.
  kSample,    ///< Draws a (batch) sample; used by SGD.
  kCache,     ///< Materializes its input for reuse across iterations.
  // Binary / n-ary.
  kJoin,      ///< Key-equality join of two inputs.
  kUnion,     ///< Bag union of two inputs.
  kCartesian, ///< Cross product of two inputs.
  // Aggregations.
  kReduceBy,  ///< Per-key aggregation UDF.
  kGroupBy,   ///< Grouping (materializes groups).
  kGlobalReduce,  ///< Full-input aggregation to one tuple.
  // Iteration.
  kLoopBegin,  ///< Head of a loop; body sits between begin and end.
  kLoopEnd,    ///< Tail of a loop; feeds back to the matching begin.
  kBroadcast,  ///< Makes a small dataset available to all workers.
  // Sinks.
  kCollectionSink,  ///< Gathers the result into a driver-side collection.
  kFileSink,        ///< Writes the result to a file.
  kKindCount,       // Sentinel; keep last.
};

inline constexpr int kNumLogicalOpKinds =
    static_cast<int>(LogicalOpKind::kKindCount);

/// Short stable name (used in plan dumps and model feature names).
std::string_view ToString(LogicalOpKind kind);

/// Whether the operator consumes two inputs (juncture-forming).
bool IsBinary(LogicalOpKind kind);

/// Whether the operator is a source (no dataflow inputs).
bool IsSource(LogicalOpKind kind);

/// Whether the operator is a sink (no dataflow outputs).
bool IsSink(LogicalOpKind kind);

/// CPU complexity class of an operator's UDF, encoded as a plan-vector
/// feature (Section IV-A: logarithmic, linear, quadratic, super-quadratic).
enum class UdfComplexity : uint8_t {
  kNone = 0,        ///< Operator has no UDF (e.g., sources, sinks).
  kLogarithmic = 1,
  kLinear = 2,
  kQuadratic = 3,
  kSuperQuadratic = 4,
};

std::string_view ToString(UdfComplexity complexity);

}  // namespace robopt

#endif  // ROBOPT_PLAN_OPERATOR_KIND_H_
