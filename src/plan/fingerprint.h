#ifndef ROBOPT_PLAN_FINGERPRINT_H_
#define ROBOPT_PLAN_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "plan/cardinality.h"
#include "plan/logical_plan.h"

namespace robopt {

/// 128-bit canonical fingerprint of a logical plan. Two plans that describe
/// the same dataflow graph — same operator kinds, UDF classes, selectivities,
/// cardinality/tuple-size declarations, kernels, loop structure, and the same
/// data/broadcast edges — fingerprint identically *regardless of the order
/// operators were added in*. The serving layer's plan cache keys on it.
struct PlanFingerprint {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const PlanFingerprint& other) const {
    return lo == other.lo && hi == other.hi;
  }
  bool operator!=(const PlanFingerprint& other) const {
    return !(*this == other);
  }

  /// 32 hex digits, for logs and debugging.
  std::string ToString() const;
};

/// Computes the canonical fingerprint. Each operator receives a Merkle-style
/// hash over its local fields plus its parents' hashes (positional: a Join's
/// build and probe side keep their roles) in a forward pass, and over its
/// children's hashes in a backward pass, so every node's value encodes both
/// its full ancestry and its full downstream use. The plan fingerprint
/// combines the *sorted* per-operator hashes, which is what makes it
/// insertion-order independent.
PlanFingerprint FingerprintPlan(const LogicalPlan& plan);

/// As above, and additionally writes each operator's canonical per-node hash
/// (the combined up/down Merkle value) into `node_hashes`, indexed by
/// operator id. Operator ids are insertion-order artifacts, so two builds of
/// the same dataflow can number the same operator differently — but their
/// node-hash *multisets* are equal, and sorting establishes the canonical
/// correspondence between the two id spaces. Consumers that cache per-
/// operator decisions under the fingerprint (the serving plan cache) must
/// transfer them through this correspondence, never by raw id. Operators
/// with equal node hashes are structurally interchangeable, so any pairing
/// within such a tie group is valid.
PlanFingerprint FingerprintPlan(const LogicalPlan& plan,
                                std::vector<uint64_t>* node_hashes);

/// Order-sensitive 64-bit hash of injected cardinalities (per-operator
/// input/output tuple counts). Combined with the plan fingerprint when a
/// cache key must distinguish the same plan under different observed
/// cardinalities.
uint64_t FingerprintCards(const Cardinalities& cards);

}  // namespace robopt

#endif  // ROBOPT_PLAN_FINGERPRINT_H_
