#ifndef ROBOPT_PLAN_FINGERPRINT_H_
#define ROBOPT_PLAN_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "plan/cardinality.h"
#include "plan/logical_plan.h"

namespace robopt {

/// 128-bit canonical fingerprint of a logical plan. Two plans that describe
/// the same dataflow graph — same operator kinds, UDF classes, selectivities,
/// cardinality/tuple-size declarations, kernels, loop structure, and the same
/// data/broadcast edges — fingerprint identically *regardless of the order
/// operators were added in*. The serving layer's plan cache keys on it.
struct PlanFingerprint {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const PlanFingerprint& other) const {
    return lo == other.lo && hi == other.hi;
  }
  bool operator!=(const PlanFingerprint& other) const {
    return !(*this == other);
  }

  /// 32 hex digits, for logs and debugging.
  std::string ToString() const;
};

/// Computes the canonical fingerprint. Each operator receives a Merkle-style
/// hash over its local fields plus its parents' hashes (positional: a Join's
/// build and probe side keep their roles) in a forward pass, and over its
/// children's hashes in a backward pass, so every node's value encodes both
/// its full ancestry and its full downstream use. The plan fingerprint
/// combines the *sorted* per-operator hashes, which is what makes it
/// insertion-order independent.
PlanFingerprint FingerprintPlan(const LogicalPlan& plan);

/// Order-sensitive 64-bit hash of injected cardinalities (per-operator
/// input/output tuple counts). Combined with the plan fingerprint when a
/// cache key must distinguish the same plan under different observed
/// cardinalities.
uint64_t FingerprintCards(const Cardinalities& cards);

}  // namespace robopt

#endif  // ROBOPT_PLAN_FINGERPRINT_H_
