#include "plan/fingerprint.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace robopt {

namespace {

/// splitmix64 finalizer — the same mixer the Rng seeds with.
uint64_t SplitMix(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix(uint64_t h, uint64_t v) { return SplitMix(h ^ SplitMix(v)); }

uint64_t DoubleBits(double d) {
  // +0.0 and -0.0 compare equal but differ in bits; canonicalize.
  if (d == 0.0) d = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// FNV-1a over a string (kernel names are short; quality is ample).
uint64_t StringHash(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Hash of one operator's local fields (no graph context).
uint64_t LocalHash(const LogicalOperator& op) {
  uint64_t h = SplitMix(0x524f424f50545631ULL);  // "ROBOPTV1"
  h = Mix(h, static_cast<uint64_t>(op.kind));
  h = Mix(h, static_cast<uint64_t>(op.udf));
  h = Mix(h, DoubleBits(op.selectivity));
  h = Mix(h, DoubleBits(op.source_cardinality));
  h = Mix(h, DoubleBits(op.tuple_bytes));
  h = Mix(h, DoubleBits(op.param));
  h = Mix(h, StringHash(op.kernel));
  h = Mix(h, static_cast<uint64_t>(static_cast<int64_t>(op.loop_iterations)));
  return h;
}

/// Folds the hashes of one adjacency list into `h`, tagged by edge class.
/// Positional: parent order is semantic (Join build/probe sides).
uint64_t MixNeighbors(uint64_t h, const std::vector<OperatorId>& neighbors,
                      const std::vector<uint64_t>& hashes, uint64_t tag) {
  h = Mix(h, Mix(tag, neighbors.size()));
  for (const OperatorId n : neighbors) h = Mix(h, hashes[n]);
  return h;
}

/// Combines a sorted copy of per-operator hashes under a seed.
uint64_t CombineSorted(std::vector<uint64_t> hashes, uint64_t seed) {
  std::sort(hashes.begin(), hashes.end());
  uint64_t h = SplitMix(seed);
  for (const uint64_t v : hashes) h = Mix(h, v);
  return h;
}

}  // namespace

std::string PlanFingerprint::ToString() const {
  static const char* kHex = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = kHex[(hi >> (4 * i)) & 0xf];
    out[31 - i] = kHex[(lo >> (4 * i)) & 0xf];
  }
  return out;
}

PlanFingerprint FingerprintPlan(const LogicalPlan& plan) {
  return FingerprintPlan(plan, nullptr);
}

PlanFingerprint FingerprintPlan(const LogicalPlan& plan,
                                std::vector<uint64_t>* node_hashes) {
  const int n = plan.num_operators();
  const std::vector<OperatorId> order = plan.TopologicalOrder();

  // Forward pass: each operator over its local fields + parent hashes.
  std::vector<uint64_t> up(n, 0);
  for (const OperatorId id : order) {
    uint64_t h = LocalHash(plan.op(id));
    h = MixNeighbors(h, plan.parents(id), up, /*tag=*/1);
    h = MixNeighbors(h, plan.side_parents(id), up, /*tag=*/2);
    // LoopEnd's pairing edge, so distinct loops cannot be confused even if
    // their bodies hash alike.
    const LogicalOperator& op = plan.op(id);
    if (op.loop_begin != kInvalidOperatorId) h = Mix(h, up[op.loop_begin]);
    up[id] = h;
  }

  // Backward pass: each operator over its children hashes, so a node's
  // value also encodes how its output is consumed downstream.
  std::vector<uint64_t> down(n, 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const OperatorId id = *it;
    uint64_t h = LocalHash(plan.op(id));
    h = MixNeighbors(h, plan.children(id), down, /*tag=*/3);
    h = MixNeighbors(h, plan.side_children(id), down, /*tag=*/4);
    down[id] = h;
  }

  std::vector<uint64_t> combined(n);
  for (int i = 0; i < n; ++i) combined[i] = Mix(up[i], down[i]);
  if (node_hashes != nullptr) *node_hashes = combined;

  PlanFingerprint fp;
  fp.lo = Mix(CombineSorted(combined, 0x6c6f5f6c616e6531ULL),
              static_cast<uint64_t>(n));
  fp.hi = Mix(CombineSorted(std::move(combined), 0x68695f6c616e6532ULL),
              static_cast<uint64_t>(n));
  return fp;
}

uint64_t FingerprintCards(const Cardinalities& cards) {
  uint64_t h = SplitMix(0x63617264735f6670ULL);
  h = Mix(h, cards.input.size());
  for (const double v : cards.input) h = Mix(h, DoubleBits(v));
  h = Mix(h, cards.output.size());
  for (const double v : cards.output) h = Mix(h, DoubleBits(v));
  return h;
}

}  // namespace robopt
