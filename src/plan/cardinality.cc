#include "plan/cardinality.h"

#include <algorithm>

namespace robopt {

void CardinalityEstimator::InjectOutputCardinality(OperatorId id,
                                                   double tuples) {
  injected_.emplace_back(id, tuples);
}

Cardinalities CardinalityEstimator::Estimate() const {
  const LogicalPlan& plan = *plan_;
  const int n = plan.num_operators();
  std::vector<double> injected(n, -1.0);
  for (const auto& [id, tuples] : injected_) injected[id] = tuples;

  Cardinalities cards;
  cards.input.assign(n, 0.0);
  cards.output.assign(n, 0.0);

  for (OperatorId id : plan.TopologicalOrder()) {
    const LogicalOperator& op = plan.op(id);
    double in_sum = 0.0;
    double in_max = 0.0;
    double in_prod = 1.0;
    for (OperatorId parent : plan.parents(id)) {
      const double c = cards.output[parent];
      in_sum += c;
      in_max = std::max(in_max, c);
      in_prod *= c;
    }
    cards.input[id] = in_sum;

    if (injected[id] >= 0.0) {
      // The paper's "real cardinalities injected" mode: trust the caller.
      cards.output[id] = injected[id];
      continue;
    }

    double out = 0.0;
    switch (op.kind) {
      case LogicalOpKind::kTextFileSource:
      case LogicalOpKind::kCollectionSource:
      case LogicalOpKind::kTableSource:
        out = op.source_cardinality;
        break;
      case LogicalOpKind::kSample:
        // An absolute batch size (param) wins over the selectivity ratio.
        out = op.param > 0 ? std::min(op.param, in_sum)
                           : op.selectivity * in_sum;
        break;
      case LogicalOpKind::kFilter:
      case LogicalOpKind::kReduceBy:
      case LogicalOpKind::kGroupBy:
      case LogicalOpKind::kDistinct:
      case LogicalOpKind::kFlatMap:  // Selectivity may exceed 1 (fan-out).
        out = op.selectivity * in_sum;
        break;
      case LogicalOpKind::kJoin:
        // Foreign-key-style join: matches scale with the larger side.
        out = op.selectivity * in_max;
        break;
      case LogicalOpKind::kCartesian:
        out = op.selectivity * in_prod;
        break;
      case LogicalOpKind::kUnion:
        out = in_sum;
        break;
      case LogicalOpKind::kCount:
      case LogicalOpKind::kGlobalReduce:
        out = 1.0;
        break;
      default:
        // Map, Project, Sort, Cache, Broadcast, loops, sinks: preserve
        // modulo selectivity.
        out = op.selectivity * in_sum;
        break;
    }
    cards.output[id] = out;
  }
  return cards;
}

}  // namespace robopt
