#ifndef ROBOPT_PLATFORM_DOT_H_
#define ROBOPT_PLATFORM_DOT_H_

#include <string>

#include "plan/logical_plan.h"
#include "platform/execution_plan.h"

namespace robopt {

/// Graphviz rendering of a logical plan: solid edges for dataflow, dashed
/// for broadcast side inputs, double circles for loop heads/tails.
std::string ToDot(const LogicalPlan& plan);

/// Graphviz rendering of an execution plan: operators colored by platform,
/// conversion operators materialized as diamond nodes on their edges (the
/// Fig. 3(b) picture).
std::string ToDot(const ExecutionPlan& plan);

}  // namespace robopt

#endif  // ROBOPT_PLATFORM_DOT_H_
