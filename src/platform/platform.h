#ifndef ROBOPT_PLATFORM_PLATFORM_H_
#define ROBOPT_PLATFORM_PLATFORM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "plan/operator_kind.h"

namespace robopt {

using PlatformId = uint8_t;

/// Upper bound on simultaneously registered platforms. The paper evaluates
/// 2-5; 8 leaves headroom for extensions.
inline constexpr int kMaxPlatforms = 8;

/// Broad execution style of a platform; drives which conversion operator is
/// required when data crosses platforms.
enum class PlatformClass : uint8_t {
  kSingleNode = 0,  ///< Driver-local engine (the paper's "Java").
  kDistributed,     ///< Cluster engine (Spark-, Flink-, GraphX-like).
  kRelational,      ///< DBMS (Postgres-like); data lives in tables.
};

/// Descriptor of one data processing platform. Performance characteristics
/// live in the executor (src/exec); this type is purely structural so the
/// optimizer cannot peek at the ground truth.
struct Platform {
  PlatformId id = 0;
  std::string name;
  PlatformClass cls = PlatformClass::kDistributed;
  /// Bitmask over LogicalOpKind: which logical operators this platform can
  /// execute. Bit i corresponds to the kind with value i.
  uint32_t capabilities = 0;

  bool Supports(LogicalOpKind kind) const {
    return (capabilities >> static_cast<int>(kind)) & 1u;
  }
};

/// Builds a capability mask from a list of kinds.
uint32_t CapabilityMask(const std::vector<LogicalOpKind>& kinds);

/// Capability mask covering every logical operator.
uint32_t FullCapabilityMask();

/// Capability mask of a relational (Postgres-like) engine.
uint32_t RelationalCapabilityMask();

}  // namespace robopt

#endif  // ROBOPT_PLATFORM_PLATFORM_H_
