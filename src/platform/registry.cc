#include "platform/registry.h"

#include <algorithm>
#include <tuple>

#include "common/check.h"

namespace robopt {

PlatformId PlatformRegistry::AddPlatform(std::string name, PlatformClass cls,
                                         uint32_t capabilities) {
  ROBOPT_CHECK(platforms_.size() < kMaxPlatforms);
  ROBOPT_CHECK(!built_);
  Platform platform;
  platform.id = static_cast<PlatformId>(platforms_.size());
  platform.name = std::move(name);
  platform.cls = cls;
  platform.capabilities = capabilities;
  platforms_.push_back(std::move(platform));
  return platforms_.back().id;
}

void PlatformRegistry::AddVariant(LogicalOpKind kind, PlatformId platform,
                                  std::string name) {
  ROBOPT_CHECK(!built_);
  extra_variants_.emplace_back(kind, platform, std::move(name));
}

void PlatformRegistry::Build() {
  ROBOPT_CHECK(!built_);
  for (int k = 0; k < kNumLogicalOpKinds; ++k) {
    const auto kind = static_cast<LogicalOpKind>(k);
    auto& list = alts_[k];
    list.clear();
    for (const Platform& platform : platforms_) {
      if (!platform.Supports(kind)) continue;
      ExecutionAlt alt;
      alt.platform = platform.id;
      alt.name = platform.name + std::string(ToString(kind));
      alt.variant = 0;
      list.push_back(std::move(alt));
      // Extra variants of this (kind, platform), in registration order.
      uint8_t variant = 1;
      for (const auto& [vkind, vplat, vname] : extra_variants_) {
        if (vkind == kind && vplat == platform.id) {
          ExecutionAlt extra;
          extra.platform = platform.id;
          extra.name = vname;
          extra.variant = variant++;
          list.push_back(std::move(extra));
        }
      }
    }
  }
  built_ = true;
}

StatusOr<PlatformId> PlatformRegistry::FindPlatform(
    const std::string& name) const {
  for (const Platform& platform : platforms_) {
    if (platform.name == name) return platform.id;
  }
  return Status::NotFound("platform " + name);
}

int PlatformRegistry::MaxAlternatives() const {
  int max_alts = 0;
  for (const auto& list : alts_) {
    max_alts = std::max(max_alts, static_cast<int>(list.size()));
  }
  return max_alts;
}

PlatformRegistry PlatformRegistry::Default(int num_platforms) {
  ROBOPT_CHECK(num_platforms >= 1 && num_platforms <= 5);
  PlatformRegistry registry;

  const uint32_t all = FullCapabilityMask();
  const uint32_t no_table =
      all & ~CapabilityMask({LogicalOpKind::kTableSource});
  const uint32_t engine_caps =
      no_table & ~CapabilityMask({LogicalOpKind::kCollectionSource});

  // Order matters: ids are stable and the executor's performance profiles
  // key on the names.
  registry.AddPlatform("Java", PlatformClass::kSingleNode, no_table);
  if (num_platforms >= 2) {
    PlatformId spark =
        registry.AddPlatform("Spark", PlatformClass::kDistributed,
                             engine_caps);
    // Spark's sampling operator exists with and without a preceding cache;
    // caching *seems* beneficial but destroys the stateful sampler's state
    // inside loops (the paper's SGD finding, Section VII-C2).
    registry.AddVariant(LogicalOpKind::kSample, spark,
                        "SparkCacheShuffleSample");
  }
  if (num_platforms >= 3) {
    registry.AddPlatform("Flink", PlatformClass::kDistributed, engine_caps);
  }
  if (num_platforms >= 4) {
    registry.AddPlatform("Postgres", PlatformClass::kRelational,
                         RelationalCapabilityMask());
  }
  if (num_platforms >= 5) {
    registry.AddPlatform(
        "GraphX", PlatformClass::kDistributed,
        CapabilityMask({LogicalOpKind::kTextFileSource, LogicalOpKind::kMap,
                        LogicalOpKind::kFlatMap, LogicalOpKind::kFilter,
                        LogicalOpKind::kJoin, LogicalOpKind::kReduceBy,
                        LogicalOpKind::kGlobalReduce,
                        LogicalOpKind::kLoopBegin, LogicalOpKind::kLoopEnd,
                        LogicalOpKind::kCount, LogicalOpKind::kCache,
                        LogicalOpKind::kCollectionSink}));
  }
  registry.Build();
  return registry;
}

PlatformRegistry PlatformRegistry::Synthetic(int k) {
  ROBOPT_CHECK(k >= 1 && k <= kMaxPlatforms);
  PlatformRegistry registry;
  const uint32_t all = FullCapabilityMask();
  for (int i = 0; i < k; ++i) {
    registry.AddPlatform("P" + std::to_string(i),
                         i == 0 ? PlatformClass::kSingleNode
                                : PlatformClass::kDistributed,
                         all);
  }
  registry.Build();
  return registry;
}

}  // namespace robopt
