#include "platform/platform.h"

namespace robopt {

uint32_t CapabilityMask(const std::vector<LogicalOpKind>& kinds) {
  uint32_t mask = 0;
  for (LogicalOpKind kind : kinds) {
    mask |= 1u << static_cast<int>(kind);
  }
  return mask;
}

uint32_t FullCapabilityMask() {
  return (1u << kNumLogicalOpKinds) - 1u;
}

uint32_t RelationalCapabilityMask() {
  return CapabilityMask({
      LogicalOpKind::kTableSource,
      LogicalOpKind::kFilter,
      LogicalOpKind::kMap,
      LogicalOpKind::kProject,
      LogicalOpKind::kSort,
      LogicalOpKind::kDistinct,
      LogicalOpKind::kCount,
      LogicalOpKind::kJoin,
      LogicalOpKind::kUnion,
      LogicalOpKind::kCartesian,
      LogicalOpKind::kReduceBy,
      LogicalOpKind::kGroupBy,
      LogicalOpKind::kGlobalReduce,
  });
}

}  // namespace robopt
