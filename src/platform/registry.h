#ifndef ROBOPT_PLATFORM_REGISTRY_H_
#define ROBOPT_PLATFORM_REGISTRY_H_

#include <array>
#include <tuple>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/operator_kind.h"
#include "platform/platform.h"

namespace robopt {

/// One platform-specific implementation choice for a logical operator, e.g.
/// "SparkMap". A platform may offer several variants of the same logical
/// operator (e.g., Spark's ShufflePartitionSample with or without a
/// preceding cache — the SGD case of Section VII-C2); the enumeration treats
/// each variant as a distinct execution operator.
struct ExecutionAlt {
  PlatformId platform = 0;
  std::string name;    ///< e.g. "SparkMap", "SparkShufflePartitionSample".
  uint8_t variant = 0; ///< Distinguishes same-platform variants.
};

/// Catalog of platforms and their execution operators. The optimizer's
/// search space is, per logical operator, the list returned by
/// `AlternativesFor(kind)` filtered to platforms allowed by the caller.
class PlatformRegistry {
 public:
  PlatformRegistry() = default;

  /// Registers a platform; returns its id. `capabilities` defaults to all.
  PlatformId AddPlatform(std::string name, PlatformClass cls,
                         uint32_t capabilities);

  /// Adds an extra execution variant for (kind, platform) beyond the default
  /// one synthesized from capabilities. `name` must be unique per kind.
  void AddVariant(LogicalOpKind kind, PlatformId platform, std::string name);

  /// Finalizes the alternative lists; call after all platforms/variants are
  /// registered and before use.
  void Build();

  int num_platforms() const { return static_cast<int>(platforms_.size()); }
  const Platform& platform(PlatformId id) const { return platforms_[id]; }
  const std::vector<Platform>& platforms() const { return platforms_; }

  StatusOr<PlatformId> FindPlatform(const std::string& name) const;

  /// All execution alternatives of a logical operator kind, in a stable
  /// order (platform registration order, default variant first).
  const std::vector<ExecutionAlt>& AlternativesFor(LogicalOpKind kind) const {
    return alts_[static_cast<int>(kind)];
  }

  /// Largest alternative count over all kinds (sizing plan vectors).
  int MaxAlternatives() const;

  /// The paper's default setup: JavaStreams (single node), Spark and Flink
  /// (distributed), Postgres (relational), GraphX (distributed, restricted) —
  /// pass how many of them to register, in that order (2..5).
  static PlatformRegistry Default(int num_platforms = 3);

  /// Synthetic registry for the scalability experiments (Figs. 9-10 and
  /// Table I): `k` homogeneous platforms, all supporting every operator.
  static PlatformRegistry Synthetic(int k);

 private:
  std::vector<Platform> platforms_;
  std::array<std::vector<ExecutionAlt>, kNumLogicalOpKinds> alts_;
  std::vector<std::tuple<LogicalOpKind, PlatformId, std::string>>
      extra_variants_;
  bool built_ = false;
};

}  // namespace robopt

#endif  // ROBOPT_PLATFORM_REGISTRY_H_
