#include "platform/execution_plan.h"

#include <algorithm>

#include "common/check.h"

namespace robopt {

ExecutionPlan::ExecutionPlan(const LogicalPlan* plan,
                             const PlatformRegistry* registry)
    : plan_(plan),
      registry_(registry),
      assignment_(plan != nullptr ? plan->num_operators() : 0, -1) {}

void ExecutionPlan::Assign(OperatorId id, int alt_index) {
  ROBOPT_CHECK(id < assignment_.size());
  const auto& alts = registry_->AlternativesFor(plan_->op(id).kind);
  ROBOPT_CHECK(alt_index >= 0 &&
               alt_index < static_cast<int>(alts.size()));
  assignment_[id] = static_cast<int16_t>(alt_index);
}

const ExecutionAlt& ExecutionPlan::alt(OperatorId id) const {
  ROBOPT_CHECK(IsAssigned(id));
  return registry_->AlternativesFor(plan_->op(id).kind)[assignment_[id]];
}

std::vector<ConversionInstance> ExecutionPlan::Conversions() const {
  std::vector<ConversionInstance> out;
  for (const LogicalOperator& op : plan_->operators()) {
    if (!IsAssigned(op.id)) continue;
    // Side (broadcast) edges move data across platforms just like data edges.
    for (OperatorId child : plan_->AllChildren(op.id)) {
      if (!IsAssigned(child)) continue;
      const PlatformId from = PlatformOf(op.id);
      const PlatformId to = PlatformOf(child);
      if (from == to) continue;
      ConversionInstance conv;
      conv.from_op = op.id;
      conv.to_op = child;
      conv.from_platform = from;
      conv.to_platform = to;
      conv.kind = ConversionFor(registry_->platform(from).cls,
                                registry_->platform(to).cls);
      out.push_back(conv);
    }
  }
  return out;
}

int ExecutionPlan::NumPlatformSwitches() const {
  return static_cast<int>(Conversions().size());
}

std::vector<PlatformId> ExecutionPlan::PlatformsUsed() const {
  std::vector<PlatformId> out;
  for (const LogicalOperator& op : plan_->operators()) {
    if (!IsAssigned(op.id)) continue;
    const PlatformId platform = PlatformOf(op.id);
    if (std::find(out.begin(), out.end(), platform) == out.end()) {
      out.push_back(platform);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status ExecutionPlan::Validate() const {
  for (const LogicalOperator& op : plan_->operators()) {
    if (!IsAssigned(op.id)) {
      return Status::FailedPrecondition("operator " + op.name +
                                        " is unassigned");
    }
    const ExecutionAlt& chosen = alt(op.id);
    if (!registry_->platform(chosen.platform).Supports(op.kind)) {
      return Status::Internal("platform cannot run " + op.name);
    }
  }
  return Status::OK();
}

std::string ExecutionPlan::DebugString() const {
  std::string out = "ExecutionPlan\n";
  for (const LogicalOperator& op : plan_->operators()) {
    out += "  o" + std::to_string(op.id) + " ";
    out += IsAssigned(op.id) ? alt(op.id).name : "<unassigned>";
    if (!op.name.empty()) out += "(" + op.name + ")";
    out += "\n";
  }
  const auto conversions = Conversions();
  if (!conversions.empty()) {
    out += "  -- conversions (COT) --\n";
    int index = 0;
    for (const ConversionInstance& conv : conversions) {
      out += "  co" + std::to_string(index++) + " " +
             registry_->platform(conv.from_platform).name +
             std::string(ToString(conv.kind)) + " o" +
             std::to_string(conv.from_op) + " -> o" +
             std::to_string(conv.to_op) + "\n";
    }
  }
  return out;
}

}  // namespace robopt
