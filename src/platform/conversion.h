#ifndef ROBOPT_PLATFORM_CONVERSION_H_
#define ROBOPT_PLATFORM_CONVERSION_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "platform/platform.h"

namespace robopt {

/// Data-movement (conversion) operator kinds. When an execution plan places
/// adjacent operators on different platforms, a conversion operator is
/// implied on the edge (e.g., Fig. 3(b)'s JavaCollect /
/// SparkCollectionSource). The kind depends on the classes of the two
/// platforms involved.
enum class ConversionKind : uint8_t {
  kCollect = 0,  ///< Distributed -> single node (e.g., SparkCollect).
  kDistribute,   ///< Single node -> distributed (e.g., CollectionSource).
  kExchange,     ///< Distributed -> distributed (e.g., via shared storage).
  kExport,       ///< Relational -> engine (DB table unload).
  kIngest,       ///< Engine -> relational (DB table load).
  kKindCount,    // Sentinel; keep last.
};

inline constexpr int kNumConversionKinds =
    static_cast<int>(ConversionKind::kKindCount);

std::string_view ToString(ConversionKind kind);

/// Which conversion an edge from a platform of class `from` to one of class
/// `to` requires.
ConversionKind ConversionFor(PlatformClass from, PlatformClass to);

/// One materialized conversion in an execution plan (a COT row).
struct ConversionInstance {
  uint16_t from_op = 0;  ///< Producing logical operator id.
  uint16_t to_op = 0;    ///< Consuming logical operator id.
  ConversionKind kind = ConversionKind::kCollect;
  PlatformId from_platform = 0;
  PlatformId to_platform = 0;
};

}  // namespace robopt

#endif  // ROBOPT_PLATFORM_CONVERSION_H_
