#include "platform/dot.h"

namespace robopt {
namespace {

const char* kPalette[] = {"#ffd966", "#9fc5e8", "#b6d7a8", "#ea9999",
                          "#d5a6bd", "#b4a7d6", "#f6b26b", "#cccccc"};

std::string NodeLabel(const LogicalOperator& op) {
  std::string label(ToString(op.kind));
  if (!op.name.empty()) label += "\\n" + op.name;
  return label;
}

}  // namespace

std::string ToDot(const LogicalPlan& plan) {
  std::string out = "digraph logical_plan {\n  rankdir=BT;\n";
  for (const LogicalOperator& op : plan.operators()) {
    out += "  o" + std::to_string(op.id) + " [label=\"" + NodeLabel(op) +
           "\"";
    if (op.kind == LogicalOpKind::kLoopBegin ||
        op.kind == LogicalOpKind::kLoopEnd) {
      out += ", shape=doublecircle";
    } else {
      out += ", shape=box";
    }
    out += "];\n";
  }
  for (const LogicalOperator& op : plan.operators()) {
    for (OperatorId child : plan.children(op.id)) {
      out += "  o" + std::to_string(op.id) + " -> o" +
             std::to_string(child) + ";\n";
    }
    for (OperatorId child : plan.side_children(op.id)) {
      out += "  o" + std::to_string(op.id) + " -> o" +
             std::to_string(child) + " [style=dashed];\n";
    }
  }
  out += "}\n";
  return out;
}

std::string ToDot(const ExecutionPlan& plan) {
  const LogicalPlan& logical = plan.logical_plan();
  const PlatformRegistry& registry = plan.registry();
  std::string out = "digraph execution_plan {\n  rankdir=BT;\n";
  for (const LogicalOperator& op : logical.operators()) {
    out += "  o" + std::to_string(op.id) + " [shape=box, style=filled";
    if (plan.IsAssigned(op.id)) {
      const PlatformId platform = plan.PlatformOf(op.id);
      out += ", fillcolor=\"" +
             std::string(kPalette[platform % std::size(kPalette)]) +
             "\", label=\"" + plan.alt(op.id).name;
      if (!op.name.empty()) out += "\\n" + op.name;
      out += "\"";
    } else {
      out += ", fillcolor=white, label=\"" + NodeLabel(op) + "\"";
    }
    out += "];\n";
  }
  // Conversion operators become diamond nodes splitting their edge.
  int conv_index = 0;
  std::vector<std::pair<OperatorId, OperatorId>> converted;
  for (const ConversionInstance& conv : plan.Conversions()) {
    const std::string node = "co" + std::to_string(conv_index++);
    out += "  " + node + " [shape=diamond, style=filled, fillcolor=\"" +
           kPalette[conv.from_platform % std::size(kPalette)] +
           "\", label=\"" + registry.platform(conv.from_platform).name +
           std::string(ToString(conv.kind)) + "\"];\n";
    out += "  o" + std::to_string(conv.from_op) + " -> " + node + ";\n";
    out += "  " + node + " -> o" + std::to_string(conv.to_op) + ";\n";
    converted.emplace_back(conv.from_op, conv.to_op);
  }
  auto is_converted = [&](OperatorId from, OperatorId to) {
    for (const auto& [f, t] : converted) {
      if (f == from && t == to) return true;
    }
    return false;
  };
  for (const LogicalOperator& op : logical.operators()) {
    for (OperatorId child : logical.children(op.id)) {
      if (is_converted(op.id, child)) continue;
      out += "  o" + std::to_string(op.id) + " -> o" +
             std::to_string(child) + ";\n";
    }
    for (OperatorId child : logical.side_children(op.id)) {
      if (is_converted(op.id, child)) continue;
      out += "  o" + std::to_string(op.id) + " -> o" +
             std::to_string(child) + " [style=dashed];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace robopt
