#include "platform/conversion.h"

namespace robopt {

std::string_view ToString(ConversionKind kind) {
  switch (kind) {
    case ConversionKind::kCollect: return "Collect";
    case ConversionKind::kDistribute: return "Distribute";
    case ConversionKind::kExchange: return "Exchange";
    case ConversionKind::kExport: return "Export";
    case ConversionKind::kIngest: return "Ingest";
    case ConversionKind::kKindCount: break;
  }
  return "Unknown";
}

ConversionKind ConversionFor(PlatformClass from, PlatformClass to) {
  if (from == PlatformClass::kRelational) return ConversionKind::kExport;
  if (to == PlatformClass::kRelational) return ConversionKind::kIngest;
  if (from == PlatformClass::kDistributed &&
      to == PlatformClass::kSingleNode) {
    return ConversionKind::kCollect;
  }
  if (from == PlatformClass::kSingleNode &&
      to == PlatformClass::kDistributed) {
    return ConversionKind::kDistribute;
  }
  return ConversionKind::kExchange;
}

}  // namespace robopt
