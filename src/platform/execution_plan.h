#ifndef ROBOPT_PLATFORM_EXECUTION_PLAN_H_
#define ROBOPT_PLATFORM_EXECUTION_PLAN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "plan/logical_plan.h"
#include "platform/conversion.h"
#include "platform/registry.h"

namespace robopt {

/// A fully platform-instantiated query plan: for every logical operator, the
/// chosen execution alternative, plus the implied conversion operators on
/// cross-platform edges (the paper's LOT + COT realization, Fig. 6). This is
/// what `unvectorize` produces and the executor consumes.
class ExecutionPlan {
 public:
  /// `plan` and `registry` must outlive this object.
  ExecutionPlan(const LogicalPlan* plan, const PlatformRegistry* registry);

  /// Assigns logical operator `id` the `alt_index`-th entry of
  /// `registry->AlternativesFor(kind)`.
  void Assign(OperatorId id, int alt_index);

  bool IsAssigned(OperatorId id) const { return assignment_[id] >= 0; }
  int alt_index(OperatorId id) const { return assignment_[id]; }

  /// The chosen execution operator for `id`. Requires IsAssigned(id).
  const ExecutionAlt& alt(OperatorId id) const;

  /// Platform the operator runs on. Requires IsAssigned(id).
  PlatformId PlatformOf(OperatorId id) const { return alt(id).platform; }

  /// All implied conversion operators: one per edge whose endpoints run on
  /// different platforms.
  std::vector<ConversionInstance> Conversions() const;

  /// Number of platform switches (edges crossing platforms). TDGEN's
  /// heuristic pruning bounds this (Section VI-A, beta = 3).
  int NumPlatformSwitches() const;

  /// Distinct platforms used by the plan.
  std::vector<PlatformId> PlatformsUsed() const;

  /// Checks every operator is assigned to a capable platform.
  Status Validate() const;

  const LogicalPlan& logical_plan() const { return *plan_; }
  const PlatformRegistry& registry() const { return *registry_; }

  /// Human-readable rendering in the style of Fig. 6 (LOT + COT).
  std::string DebugString() const;

 private:
  const LogicalPlan* plan_;
  const PlatformRegistry* registry_;
  std::vector<int16_t> assignment_;  // -1 = unassigned.
};

}  // namespace robopt

#endif  // ROBOPT_PLATFORM_EXECUTION_PLAN_H_
