#ifndef ROBOPT_ML_MODEL_H_
#define ROBOPT_ML_MODEL_H_

#include <cstddef>
#include <string>

#include "common/status.h"
#include "ml/ml_dataset.h"

namespace robopt {

/// A regression model that predicts query runtimes from plan vectors.
/// Implementations must support batch prediction over a contiguous
/// row-major buffer: plan enumeration calls this on whole plan vector
/// enumerations at once (Section IV-E's prune operation).
class RuntimeModel {
 public:
  virtual ~RuntimeModel() = default;

  /// Fits the model. Labels are runtimes in seconds; implementations are
  /// free to transform them internally (e.g., log-space).
  virtual Status Train(const MlDataset& data) = 0;

  /// Predicts `n` rows of `dim` features from `x` into `out`.
  virtual void PredictBatch(const float* x, size_t n, size_t dim,
                            float* out) const = 0;

  /// Reduced-precision batch prediction, for models that carry a quantized
  /// representation (RandomForest's 8-bit thresholds). The default is the
  /// exact path, so models without one behave identically through either
  /// entry point. Callers opt in deliberately — the serving layer gates
  /// this behind a measured holdout-error bound.
  virtual void PredictBatchQuantized(const float* x, size_t n, size_t dim,
                                     float* out) const {
    PredictBatch(x, n, dim, out);
  }

  /// Single-row convenience.
  float Predict(const float* x, size_t dim) const {
    float out = 0;
    PredictBatch(x, 1, dim, &out);
    return out;
  }

  /// Serializes to / restores from a text file.
  virtual Status Save(const std::string& path) const = 0;
  virtual Status Load(const std::string& path) = 0;

  virtual std::string Name() const = 0;
};

}  // namespace robopt

#endif  // ROBOPT_ML_MODEL_H_
