#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/thread_pool.h"

namespace robopt {

RandomForest::RandomForest() : params_(Params()) {}

RandomForest::RandomForest(Params params) : params_(params) {}

Status RandomForest::Train(const MlDataset& data) {
  if (data.size() == 0) return Status::InvalidArgument("empty training set");
  // Transform labels once; trees then fit the transformed set.
  MlDataset transformed(data.dim());
  for (size_t i = 0; i < data.size(); ++i) {
    const float label =
        params_.log_label
            ? static_cast<float>(std::log1p(
                  static_cast<double>(data.label(i))))
            : data.label(i);
    transformed.Add(data.row(i), label);
  }

  meta_.trained_rows = data.size();
  Rng rng(params_.seed);
  trees_.assign(params_.num_trees, DecisionTree());
  const auto sample_size = static_cast<size_t>(
      params_.subsample * static_cast<double>(transformed.size()));
  std::vector<uint32_t> indices(std::max<size_t>(sample_size, 1));
  for (DecisionTree& tree : trees_) {
    for (uint32_t& index : indices) {
      index = static_cast<uint32_t>(rng.NextBounded(transformed.size()));
    }
    tree.Fit(transformed, indices, params_.tree, &rng);
  }
  kernel_.Build(trees_);
  return Status::OK();
}

void RandomForest::PredictBatch(const float* x, size_t n, size_t dim,
                                float* out) const {
  if (n == 0) return;
  if (kernel_.num_trees() != trees_.size()) {
    // Defensive: a forest whose kernel was not rebuilt (impossible through
    // the public API) still predicts correctly via the reference path.
    PredictBatchReference(x, n, dim, out);
    return;
  }
  kernel_.PredictBatch(x, n, dim, out, params_.log_label,
                       params_.num_threads);
}

void RandomForest::PredictBatchQuantized(const float* x, size_t n, size_t dim,
                                         float* out) const {
  if (n == 0) return;
  if (kernel_.num_trees() != trees_.size() || !kernel_.has_quantized()) {
    PredictBatch(x, n, dim, out);
    return;
  }
  kernel_.PredictBatch(x, n, dim, out, params_.log_label,
                       params_.num_threads, /*quantized=*/true);
}

void RandomForest::PredictBatchReference(const float* x, size_t n, size_t dim,
                                         float* out) const {
  if (n == 0) return;
  if (trees_.empty()) {
    std::fill(out, out + n, 0.0f);
    return;
  }
  // Cache-blocked per-tree walk: for each block of rows, loop trees in the
  // outer loop and rows in the inner one, so one tree's node array is
  // walked for the whole block before moving on. Blocks are independent, so
  // the block range parallelizes across the pool; each row's sum keeps the
  // fixed tree order and the result is bit-identical to the serial loop
  // (and to the flattened ForestKernel, which mirrors this structure).
  const double inv = 1.0 / static_cast<double>(trees_.size());
  const int threads = params_.num_threads == 0 ? ThreadPool::HardwareThreads()
                                               : params_.num_threads;
  const size_t num_blocks =
      (n + ForestKernel::kRowBlock - 1) / ForestKernel::kRowBlock;
  ParallelFor(threads, 0, num_blocks, 1, [&](size_t block0, size_t block1) {
    double acc[ForestKernel::kRowBlock];
    for (size_t block = block0; block < block1; ++block) {
      const size_t row0 = block * ForestKernel::kRowBlock;
      const size_t row1 = std::min(n, row0 + ForestKernel::kRowBlock);
      std::fill(acc, acc + (row1 - row0), 0.0);
      for (const DecisionTree& tree : trees_) {
        for (size_t row = row0; row < row1; ++row) {
          acc[row - row0] += tree.Predict(x + row * dim, dim);
        }
      }
      for (size_t row = row0; row < row1; ++row) {
        double value = acc[row - row0] * inv;
        if (params_.log_label) value = std::expm1(value);
        out[row] = static_cast<float>(value < 0 ? 0 : value);
      }
    }
  });
}

Status RandomForest::Save(const std::string& path) const {
  // Write-then-fsync-then-rename: the final path only ever holds a complete
  // file, across both process crashes and power loss. A failure mid-write
  // leaves (at worst) a stale .tmp sibling, never a torn model where Load
  // would find it; the data is on stable storage before the rename makes it
  // visible. (On Windows only the process-crash guarantee holds — there is
  // no fsync — and Load's truncation checks still fail safe.)
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) return Status::Internal("cannot open " + tmp);
    file << "random_forest 2\n"
         << meta_.version << " " << meta_.trained_rows << "\n"
         << trees_.size() << " " << (params_.log_label ? 1 : 0) << "\n";
    for (const DecisionTree& tree : trees_) tree.Serialize(file);
    file.flush();
    if (!file) {
      std::remove(tmp.c_str());
      return Status::Internal("write failed: " + tmp);
    }
  }
#ifndef _WIN32
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd < 0 || ::fsync(fd) != 0) {
      if (fd >= 0) ::close(fd);
      std::remove(tmp.c_str());
      return Status::Internal("fsync failed: " + tmp);
    }
    ::close(fd);
  }
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " into " + path);
  }
#ifndef _WIN32
  // Persist the directory entry too, so the rename itself survives power
  // loss. Best-effort: the file data is already durable, and some
  // filesystems refuse fsync on directories.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : slash == 0 ? std::string("/")
                                           : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
#endif
  return Status::OK();
}

Status RandomForest::Load(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::Internal("cannot open " + path);
  std::string magic;
  int version = 0;
  size_t count = 0;
  int log_label = 0;
  ModelMeta meta;
  file >> magic >> version;
  if (!file || magic != "random_forest") {
    return Status::InvalidArgument("not a random_forest file: " + path);
  }
  if (version != 1 && version != 2) {
    return Status::InvalidArgument("unsupported random_forest version " +
                                   std::to_string(version) + ": " + path);
  }
  // v2 carries a provenance line; v1 files predate it and default to
  // {version 0, trained_rows 0}.
  if (version == 2) file >> meta.version >> meta.trained_rows;
  file >> count >> log_label;
  if (!file) {
    return Status::InvalidArgument("truncated random_forest header: " + path);
  }
  // Reject corrupt/truncated headers before the tree count drives an
  // allocation. Real forests are tens of trees; a million is far beyond any
  // legitimate file and well below anything that could exhaust memory.
  constexpr size_t kMaxTrees = 1000000;
  if (count > kMaxTrees) {
    return Status::InvalidArgument(
        "implausible tree count " + std::to_string(count) +
        " in random_forest file: " + path);
  }
  params_.log_label = log_label != 0;
  meta_ = meta;
  trees_.assign(count, DecisionTree());
  for (DecisionTree& tree : trees_) {
    if (!tree.Deserialize(file)) {
      trees_.clear();
      kernel_.Clear();
      return Status::Internal("corrupt or truncated forest file: " + path);
    }
  }
  kernel_.Build(trees_);
  return Status::OK();
}

}  // namespace robopt
