#include "ml/random_forest.h"

#include <cmath>
#include <fstream>

namespace robopt {

RandomForest::RandomForest() : params_(Params()) {}

RandomForest::RandomForest(Params params) : params_(params) {}

Status RandomForest::Train(const MlDataset& data) {
  if (data.size() == 0) return Status::InvalidArgument("empty training set");
  // Transform labels once; trees then fit the transformed set.
  MlDataset transformed(data.dim());
  for (size_t i = 0; i < data.size(); ++i) {
    const float label =
        params_.log_label
            ? static_cast<float>(std::log1p(
                  static_cast<double>(data.label(i))))
            : data.label(i);
    transformed.Add(data.row(i), label);
  }

  Rng rng(params_.seed);
  trees_.assign(params_.num_trees, DecisionTree());
  const auto sample_size = static_cast<size_t>(
      params_.subsample * static_cast<double>(transformed.size()));
  std::vector<uint32_t> indices(std::max<size_t>(sample_size, 1));
  for (DecisionTree& tree : trees_) {
    for (uint32_t& index : indices) {
      index = static_cast<uint32_t>(rng.NextBounded(transformed.size()));
    }
    tree.Fit(transformed, indices, params_.tree, &rng);
  }
  return Status::OK();
}

void RandomForest::PredictBatch(const float* x, size_t n, size_t dim,
                                float* out) const {
  const double inv = trees_.empty() ? 0.0 : 1.0 / trees_.size();
  for (size_t i = 0; i < n; ++i) {
    const float* row = x + i * dim;
    double acc = 0.0;
    for (const DecisionTree& tree : trees_) acc += tree.Predict(row, dim);
    acc *= inv;
    if (params_.log_label) acc = std::expm1(acc);
    out[i] = static_cast<float>(acc < 0 ? 0 : acc);
  }
}

Status RandomForest::Save(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::Internal("cannot open " + path);
  file << "random_forest 1\n"
       << trees_.size() << " " << (params_.log_label ? 1 : 0) << "\n";
  for (const DecisionTree& tree : trees_) tree.Serialize(file);
  return file ? Status::OK() : Status::Internal("write failed: " + path);
}

Status RandomForest::Load(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::Internal("cannot open " + path);
  std::string magic;
  int version = 0;
  size_t count = 0;
  int log_label = 0;
  file >> magic >> version >> count >> log_label;
  if (magic != "random_forest") {
    return Status::InvalidArgument("not a random_forest file: " + path);
  }
  params_.log_label = log_label != 0;
  trees_.assign(count, DecisionTree());
  for (DecisionTree& tree : trees_) {
    if (!tree.Deserialize(file)) {
      return Status::Internal("truncated forest file: " + path);
    }
  }
  return Status::OK();
}

}  // namespace robopt
