#ifndef ROBOPT_ML_DECISION_TREE_H_
#define ROBOPT_ML_DECISION_TREE_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/rng.h"
#include "ml/ml_dataset.h"

namespace robopt {

/// Hyperparameters shared by trees and forests.
struct TreeParams {
  int max_depth = 18;
  int min_samples_leaf = 2;
  int min_samples_split = 4;
  /// Features tried per split; 0 means all, -1 means sqrt(dim) (the usual
  /// random-forest default).
  int max_features = -1;
};

/// CART regression tree (variance-reduction splits), grown on an index
/// subset so forests can bag without copying data. Nodes are stored in a
/// flat array — prediction is a tight loop over ints and floats, in keeping
/// with the repository's vector-first design.
class DecisionTree {
 public:
  DecisionTree() = default;

  /// Fits on `data` restricted to `indices` (with repetitions allowed, for
  /// bootstrap samples). `rng` drives the feature subsampling.
  void Fit(const MlDataset& data, const std::vector<uint32_t>& indices,
           const TreeParams& params, Rng* rng);

  float Predict(const float* row, size_t dim) const;

  size_t num_nodes() const { return nodes_.size(); }
  int Depth() const;

  /// Flat-array node accessors (the ForestKernel flattens trees through
  /// these). Node 0 is the root; children always follow their parent.
  int32_t node_feature(size_t i) const { return nodes_[i].feature; }
  float node_threshold(size_t i) const { return nodes_[i].threshold; }
  int32_t node_left(size_t i) const { return nodes_[i].left; }
  int32_t node_right(size_t i) const { return nodes_[i].right; }
  float node_value(size_t i) const { return nodes_[i].value; }

  void Serialize(std::ostream& out) const;
  bool Deserialize(std::istream& in);

 private:
  struct Node {
    int32_t feature = -1;  ///< -1 marks a leaf.
    float threshold = 0.0f;
    int32_t left = -1;   ///< Index of the <= child.
    int32_t right = -1;  ///< Index of the > child.
    float value = 0.0f;  ///< Leaf prediction.
  };

  int32_t Grow(const MlDataset& data, std::vector<uint32_t>& indices,
               size_t begin, size_t end, int depth, const TreeParams& params,
               Rng* rng);

  std::vector<Node> nodes_;
};

}  // namespace robopt

#endif  // ROBOPT_ML_DECISION_TREE_H_
