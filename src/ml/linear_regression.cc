#include "ml/linear_regression.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace robopt {
namespace {

/// Solves A w = b in place for symmetric positive-definite A (Cholesky).
/// Returns false if A is not positive definite.
bool SolveSpd(std::vector<double>& a, std::vector<double>& b, size_t n) {
  // Decompose A = L L^T, storing L in the lower triangle of `a`.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (size_t k = 0; k < j; ++k) sum -= a[i * n + k] * a[j * n + k];
      if (i == j) {
        if (sum <= 0.0) return false;
        a[i * n + i] = std::sqrt(sum);
      } else {
        a[i * n + j] = sum / a[j * n + j];
      }
    }
  }
  // Forward substitution: L z = b.
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= a[i * n + k] * b[k];
    b[i] = sum / a[i * n + i];
  }
  // Back substitution: L^T w = z.
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double sum = b[i];
    for (size_t k = i + 1; k < n; ++k) sum -= a[k * n + i] * b[k];
    b[i] = sum / a[i * n + i];
  }
  return true;
}

}  // namespace

Status LinearRegression::Train(const MlDataset& data) {
  const size_t n = data.size();
  const size_t d = data.dim();
  if (n == 0) return Status::InvalidArgument("empty training set");

  // Standardize features for numerical stability.
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  for (size_t i = 0; i < n; ++i) {
    const float* row = data.row(i);
    for (size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) mean_[j] /= static_cast<double>(n);
  std::vector<double> var(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const float* row = data.row(i);
    for (size_t j = 0; j < d; ++j) {
      const double delta = row[j] - mean_[j];
      var[j] += delta * delta;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(n));
    inv_std_[j] = sd > 1e-12 ? 1.0 / sd : 0.0;
  }

  // Normal equations on standardized features: (X^T X + l2 I) w = X^T y.
  std::vector<double> xtx(d * d, 0.0);
  std::vector<double> xty(d, 0.0);
  double y_mean = 0.0;
  std::vector<double> z(d);
  for (size_t i = 0; i < n; ++i) {
    const float* row = data.row(i);
    const double y =
        log_label_ ? std::log1p(static_cast<double>(data.label(i)))
                   : data.label(i);
    y_mean += y;
    for (size_t j = 0; j < d; ++j) z[j] = (row[j] - mean_[j]) * inv_std_[j];
    for (size_t j = 0; j < d; ++j) {
      xty[j] += z[j] * y;
      for (size_t k = 0; k <= j; ++k) xtx[j * d + k] += z[j] * z[k];
    }
  }
  y_mean /= static_cast<double>(n);
  for (size_t j = 0; j < d; ++j) {
    for (size_t k = j + 1; k < d; ++k) xtx[j * d + k] = xtx[k * d + j];
    xtx[j * d + j] += l2_ * static_cast<double>(n);
    xty[j] -= 0.0;
  }
  // Center labels: learn deviations from the mean; bias = y_mean.
  // (X is centered already, so X^T (y - y_mean 1) == X^T y.)
  if (!SolveSpd(xtx, xty, d)) {
    return Status::Internal("normal equations not positive definite");
  }
  weights_ = std::move(xty);
  bias_ = y_mean;
  return Status::OK();
}

void LinearRegression::PredictBatch(const float* x, size_t n, size_t dim,
                                    float* out) const {
  const size_t d = weights_.size();
  for (size_t i = 0; i < n; ++i) {
    const float* row = x + i * dim;
    double acc = bias_;
    for (size_t j = 0; j < d && j < dim; ++j) {
      acc += weights_[j] * (row[j] - mean_[j]) * inv_std_[j];
    }
    if (log_label_) acc = std::expm1(acc);
    out[i] = static_cast<float>(acc < 0 ? 0 : acc);
  }
}

Status LinearRegression::Save(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::Internal("cannot open " + path);
  file << "linear_regression 1\n" << weights_.size() << " " << bias_ << " "
       << (log_label_ ? 1 : 0) << "\n";
  for (size_t j = 0; j < weights_.size(); ++j) {
    file << weights_[j] << " " << mean_[j] << " " << inv_std_[j] << "\n";
  }
  return file ? Status::OK() : Status::Internal("write failed: " + path);
}

Status LinearRegression::Load(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::Internal("cannot open " + path);
  std::string magic;
  int version = 0;
  size_t d = 0;
  int log_label = 0;
  file >> magic >> version >> d >> bias_ >> log_label;
  if (magic != "linear_regression") {
    return Status::InvalidArgument("not a linear_regression file: " + path);
  }
  log_label_ = log_label != 0;
  weights_.assign(d, 0.0);
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 0.0);
  for (size_t j = 0; j < d; ++j) {
    file >> weights_[j] >> mean_[j] >> inv_std_[j];
  }
  return file ? Status::OK() : Status::Internal("truncated file: " + path);
}

}  // namespace robopt
