// AVX2 lane of the SIMD dispatch shim. This translation unit (and only this
// one) is compiled with -mavx2 — see src/ml/CMakeLists.txt — so plain C++
// here may use AVX2 intrinsics and the compiler may auto-vectorize freely.
// It is safe to *link* into any x86-64 binary: nothing outside the kAvx2Ops
// table references these symbols, and the dispatcher only selects the table
// after cpuid reports AVX2.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "ml/simd_dispatch.h"

namespace robopt {
namespace simd {
namespace {

// Per-feature extrema across the row group, streaming row-major: each row is
// one contiguous load sequence (hardware-prefetch friendly), accumulated
// into per-feature min/max registers. vminps/vmaxps silently drop NaNs
// (they return the second operand when either is NaN), so NaN presence is
// tracked separately with unordered self-compares OR-ed across every load —
// a group with any NaN reports it and the caller ignores the summaries.
bool Avx2MinMaxGroupF32(const float* rows, size_t w, size_t dim, float* minv,
                        float* maxv) {
  __m256 nan_acc = _mm256_setzero_ps();
  size_t f = 0;
  for (; f + 8 <= dim; f += 8) {
    __m256 mn = _mm256_loadu_ps(rows + f);
    __m256 mx = mn;
    nan_acc = _mm256_or_ps(nan_acc, _mm256_cmp_ps(mn, mn, _CMP_UNORD_Q));
    for (size_t i = 1; i < w; ++i) {
      const __m256 v = _mm256_loadu_ps(rows + i * dim + f);
      mn = _mm256_min_ps(mn, v);
      mx = _mm256_max_ps(mx, v);
      nan_acc = _mm256_or_ps(nan_acc, _mm256_cmp_ps(v, v, _CMP_UNORD_Q));
    }
    _mm256_storeu_ps(minv + f, mn);
    _mm256_storeu_ps(maxv + f, mx);
  }
  bool has_nan = _mm256_movemask_ps(nan_acc) != 0;
  for (; f < dim; ++f) {
    float mn = rows[f];
    float mx = mn;
    has_nan |= mn != mn;
    for (size_t i = 1; i < w; ++i) {
      const float v = rows[i * dim + f];
      mn = v < mn ? v : mn;
      mx = v > mx ? v : mx;
      has_nan |= v != v;
    }
    minv[f] = mn;
    maxv[f] = mx;
  }
  return has_nan;
}

void Avx2AddRowsF32(float* dst, const float* a, const float* b, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] + b[i];
}

void Avx2OrBytes(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(va, vb));
  }
  for (; i < n; ++i) dst[i] = a[i] | b[i];
}

size_t Avx2FindU64(const uint64_t* keys, size_t n, uint64_t key) {
  const __m256i needle = _mm256_set1_epi64x(static_cast<long long>(key));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const int mask =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, needle)));
    if (mask != 0) return i + static_cast<size_t>(__builtin_ctz(mask));
  }
  for (; i < n; ++i) {
    if (keys[i] == key) return i;
  }
  return n;
}

}  // namespace

const OpsTable kAvx2Ops = {
    Avx2MinMaxGroupF32,
    Avx2AddRowsF32,
    Avx2OrBytes,
    Avx2FindU64,
};

}  // namespace simd
}  // namespace robopt

#endif  // defined(__x86_64__) || defined(_M_X64)
