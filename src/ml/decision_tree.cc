#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <iomanip>
#include <ostream>

#include "common/check.h"

namespace robopt {

void DecisionTree::Fit(const MlDataset& data,
                       const std::vector<uint32_t>& indices,
                       const TreeParams& params, Rng* rng) {
  nodes_.clear();
  std::vector<uint32_t> work = indices;
  if (work.empty()) {
    nodes_.push_back(Node{});  // Degenerate leaf predicting 0.
    return;
  }
  Grow(data, work, 0, work.size(), 0, params, rng);
}

int32_t DecisionTree::Grow(const MlDataset& data,
                           std::vector<uint32_t>& indices, size_t begin,
                           size_t end, int depth, const TreeParams& params,
                           Rng* rng) {
  const size_t count = end - begin;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const double y = data.label(indices[i]);
    sum += y;
    sum_sq += y * y;
  }
  const double mean = sum / static_cast<double>(count);
  const double variance = sum_sq / static_cast<double>(count) - mean * mean;

  const auto make_leaf = [&]() {
    Node leaf;
    leaf.value = static_cast<float>(mean);
    nodes_.push_back(leaf);
    return static_cast<int32_t>(nodes_.size() - 1);
  };

  if (depth >= params.max_depth ||
      count < static_cast<size_t>(params.min_samples_split) ||
      variance <= 1e-12) {
    return make_leaf();
  }

  // Feature subsampling.
  const size_t dim = data.dim();
  int num_features = params.max_features;
  if (num_features == -1) {
    num_features = static_cast<int>(std::lround(std::sqrt(dim)));
  } else if (num_features == 0 || num_features > static_cast<int>(dim)) {
    num_features = static_cast<int>(dim);
  }
  std::vector<uint32_t> features(dim);
  std::iota(features.begin(), features.end(), 0);
  for (int i = 0; i < num_features; ++i) {
    const size_t j = i + rng->NextBounded(dim - i);
    std::swap(features[i], features[j]);
  }

  // Best split over sampled features by variance reduction.
  double best_gain = 0.0;
  int32_t best_feature = -1;
  float best_threshold = 0.0f;
  std::vector<std::pair<float, float>> values;  // (feature value, label)
  values.reserve(count);
  for (int f = 0; f < num_features; ++f) {
    const uint32_t feature = features[f];
    values.clear();
    for (size_t i = begin; i < end; ++i) {
      values.emplace_back(data.row(indices[i])[feature],
                          data.label(indices[i]));
    }
    std::sort(values.begin(), values.end());
    if (values.front().first == values.back().first) continue;
    double left_sum = 0.0;
    double left_sq = 0.0;
    for (size_t i = 0; i + 1 < count; ++i) {
      const double y = values[i].second;
      left_sum += y;
      left_sq += y * y;
      if (values[i].first == values[i + 1].first) continue;
      const auto left_n = static_cast<double>(i + 1);
      const auto right_n = static_cast<double>(count - i - 1);
      if (left_n < params.min_samples_leaf ||
          right_n < params.min_samples_leaf) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double right_sq = sum_sq - left_sq;
      const double left_var = left_sq - left_sum * left_sum / left_n;
      const double right_var = right_sq - right_sum * right_sum / right_n;
      const double total_var = sum_sq - sum * sum / static_cast<double>(count);
      const double gain = total_var - left_var - right_var;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int32_t>(feature);
        best_threshold = 0.5f * (values[i].first + values[i + 1].first);
      }
    }
  }

  if (best_feature < 0 || best_gain <= 1e-12) return make_leaf();

  // Partition indices by the chosen split.
  auto middle = std::partition(
      indices.begin() + begin, indices.begin() + end, [&](uint32_t idx) {
        return data.row(idx)[best_feature] <= best_threshold;
      });
  const size_t split = static_cast<size_t>(middle - indices.begin());
  if (split == begin || split == end) return make_leaf();

  const int32_t node_index = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  nodes_[node_index].value = static_cast<float>(mean);
  const int32_t left =
      Grow(data, indices, begin, split, depth + 1, params, rng);
  const int32_t right = Grow(data, indices, split, end, depth + 1, params, rng);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

float DecisionTree::Predict(const float* row, size_t dim) const {
  if (nodes_.empty()) return 0.0f;
  int32_t node = 0;
  while (nodes_[node].feature >= 0) {
    const auto feature = static_cast<size_t>(nodes_[node].feature);
    const float value = feature < dim ? row[feature] : 0.0f;
    node = value <= nodes_[node].threshold ? nodes_[node].left
                                           : nodes_[node].right;
  }
  return nodes_[node].value;
}

int DecisionTree::Depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth over the flat array.
  std::vector<std::pair<int32_t, int>> stack = {{0, 1}};
  int depth = 0;
  while (!stack.empty()) {
    auto [node, d] = stack.back();
    stack.pop_back();
    depth = std::max(depth, d);
    if (nodes_[node].feature >= 0) {
      stack.emplace_back(nodes_[node].left, d + 1);
      stack.emplace_back(nodes_[node].right, d + 1);
    }
  }
  return depth;
}

void DecisionTree::Serialize(std::ostream& out) const {
  // 9 significant digits round-trip a float exactly.
  out << std::setprecision(9) << nodes_.size() << "\n";
  for (const Node& node : nodes_) {
    out << node.feature << " " << node.threshold << " " << node.left << " "
        << node.right << " " << node.value << "\n";
  }
}

bool DecisionTree::Deserialize(std::istream& in) {
  // Guards against corrupt/hostile model files: the node count must not
  // drive an implausible allocation, and child/feature indices must not
  // send Predict out of bounds (or into a cycle).
  constexpr size_t kMaxNodes = size_t{1} << 28;
  constexpr int32_t kMaxFeature = 1 << 20;
  size_t count = 0;
  if (!(in >> count)) return false;
  if (count > kMaxNodes) return false;
  nodes_.assign(count, Node{});
  for (Node& node : nodes_) {
    if (!(in >> node.feature >> node.threshold >> node.left >> node.right >>
          node.value)) {
      return false;
    }
  }
  // Internal nodes must reference strictly-later, in-bounds children. Grow
  // always emits children after their parent, so every legitimate tree
  // passes, and acceptance proves the Predict walk terminates.
  for (size_t i = 0; i < count; ++i) {
    const Node& node = nodes_[i];
    if (node.feature < 0) continue;  // Leaf; children unused.
    if (node.feature > kMaxFeature) return false;
    const auto self = static_cast<int64_t>(i);
    const auto limit = static_cast<int64_t>(count);
    if (node.left <= self || node.left >= limit || node.right <= self ||
        node.right >= limit) {
      return false;
    }
  }
  return true;
}

}  // namespace robopt
