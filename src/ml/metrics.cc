#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace robopt {
namespace {

std::vector<double> Ranks(const std::vector<double>& values) {
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(values.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    const double rank = 0.5 * (static_cast<double>(i) + static_cast<double>(j));
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

double Pearson(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = a.size();
  if (n < 2) return 0.0;
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  return Pearson(Ranks(a), Ranks(b));
}

RegressionMetrics Evaluate(const RuntimeModel& model, const MlDataset& data) {
  RegressionMetrics metrics;
  const size_t n = data.size();
  if (n == 0) return metrics;
  std::vector<float> predictions(n);
  model.PredictBatch(data.features().data(), n, data.dim(),
                     predictions.data());
  double y_mean = 0.0;
  for (size_t i = 0; i < n; ++i) y_mean += data.label(i);
  y_mean /= static_cast<double>(n);

  double ss_res = 0.0;
  double ss_tot = 0.0;
  std::vector<double> truth(n);
  std::vector<double> predicted(n);
  for (size_t i = 0; i < n; ++i) {
    const double y = data.label(i);
    const double p = predictions[i];
    const double err = y - p;
    metrics.mse += err * err;
    metrics.mae += std::abs(err);
    ss_res += err * err;
    ss_tot += (y - y_mean) * (y - y_mean);
    truth[i] = y;
    predicted[i] = p;
  }
  metrics.mse /= static_cast<double>(n);
  metrics.mae /= static_cast<double>(n);
  metrics.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
  metrics.spearman = SpearmanCorrelation(truth, predicted);
  return metrics;
}

}  // namespace robopt
