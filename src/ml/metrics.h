#ifndef ROBOPT_ML_METRICS_H_
#define ROBOPT_ML_METRICS_H_

#include <vector>

#include "ml/ml_dataset.h"
#include "ml/model.h"

namespace robopt {

/// Regression quality on a held-out set. `spearman` (rank correlation) is
/// the metric that actually matters to a query optimizer: it measures how
/// well the model *orders* plans by runtime.
struct RegressionMetrics {
  double mse = 0.0;
  double mae = 0.0;
  double r2 = 0.0;
  double spearman = 0.0;
};

/// Evaluates `model` on `data`.
RegressionMetrics Evaluate(const RuntimeModel& model, const MlDataset& data);

/// Spearman rank correlation of two equally sized vectors.
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

}  // namespace robopt

#endif  // ROBOPT_ML_METRICS_H_
