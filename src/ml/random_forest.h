#ifndef ROBOPT_ML_RANDOM_FOREST_H_
#define ROBOPT_ML_RANDOM_FOREST_H_

#include <string>
#include <vector>

#include "ml/decision_tree.h"
#include "ml/forest_kernel.h"
#include "ml/model.h"

namespace robopt {

/// Provenance metadata carried through RandomForest::Save/Load (file format
/// v2). The serving layer's ModelRegistry stamps `version` when a model is
/// published, so a forest file on disk identifies which registry version it
/// was.
struct ModelMeta {
  /// Registry version of the published model (0 = unversioned).
  uint64_t version = 0;
  /// Number of rows the forest was trained on (set by Train).
  uint64_t trained_rows = 0;
};

/// Random-forest regressor — the runtime model the paper settles on
/// ("we tried linear regression, random forests, and neural networks and
/// found random forests to be more robust", Section VII-A). Labels are fit
/// in log1p space: runtimes span microseconds to hours and the optimizer
/// only needs the *ordering* of predicted runtimes to be right.
class RandomForest : public RuntimeModel {
 public:
  struct Params {
    int num_trees = 60;
    TreeParams tree;
    /// Bootstrap sample size as a fraction of the training set.
    double subsample = 1.0;
    bool log_label = true;
    uint64_t seed = 13;
    /// Threads for batch inference (0 = hardware concurrency, 1 = serial).
    /// Predictions are bit-identical for every value: the cache-blocked
    /// kernel accumulates each row over trees in a fixed order within a
    /// fixed-size row block, independent of the thread count.
    int num_threads = 1;
  };

  RandomForest();
  explicit RandomForest(Params params);

  /// Adjusts inference threading after construction/Load (0 = hardware
  /// concurrency, 1 = serial). Training and serialization are unaffected.
  void set_num_threads(int num_threads) { params_.num_threads = num_threads; }

  Status Train(const MlDataset& data) override;
  /// Batch inference through the flattened SoA ForestKernel (built by
  /// Train/Load). Bit-identical to PredictBatchReference on every SIMD
  /// dispatch lane and thread count.
  void PredictBatch(const float* x, size_t n, size_t dim,
                    float* out) const override;
  /// Batch inference with the kernel's 8-bit affine-quantized split
  /// thresholds: deterministic but approximate (each split threshold moves
  /// by at most 1/510 of its feature's threshold range). The serving layer
  /// only routes estimates through this path after the quantized/exact
  /// holdout log1p-MAE delta passes ServeOptions::quantized_max_mae_delta.
  void PredictBatchQuantized(const float* x, size_t n, size_t dim,
                             float* out) const override;
  /// Reference implementation: the blocked per-DecisionTree walk the kernel
  /// replaced. Kept so tests and benches can assert the kernel's
  /// bit-equality and measure its speedup.
  void PredictBatchReference(const float* x, size_t n, size_t dim,
                             float* out) const;
  /// Writes the forest to `path` atomically: the bytes go to a sibling
  /// temporary file which is rename()d into place only after a clean write,
  /// so a crashed or interrupted save can never leave a torn model file
  /// where a loader would find it.
  Status Save(const std::string& path) const override;
  /// Accepts format v1 (no metadata) and v2 (metadata line) files.
  Status Load(const std::string& path) override;
  std::string Name() const override { return "RandomForest"; }

  /// Provenance metadata, persisted by Save and restored by Load.
  const ModelMeta& meta() const { return meta_; }
  void set_meta(const ModelMeta& meta) { meta_ = meta; }

  const std::vector<DecisionTree>& trees() const { return trees_; }
  const ForestKernel& kernel() const { return kernel_; }

 private:
  Params params_;
  ModelMeta meta_;
  std::vector<DecisionTree> trees_;
  ForestKernel kernel_;  ///< Flattened trees_; rebuilt by Train/Load.
};

}  // namespace robopt

#endif  // ROBOPT_ML_RANDOM_FOREST_H_
