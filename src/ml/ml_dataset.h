#ifndef ROBOPT_ML_ML_DATASET_H_
#define ROBOPT_ML_ML_DATASET_H_

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace robopt {

/// A supervised training set: row-major contiguous features + one label per
/// row. Contiguity matters — the whole point of the paper's design is that
/// plan vectors are flat float arrays that go straight into the model.
class MlDataset {
 public:
  explicit MlDataset(size_t dim) : dim_(dim) {}

  void Add(const float* row, float label) {
    x_.insert(x_.end(), row, row + dim_);
    y_.push_back(label);
  }

  void Add(const std::vector<float>& row, float label) {
    ROBOPT_CHECK(row.size() == dim_);
    Add(row.data(), label);
  }

  size_t size() const { return y_.size(); }
  size_t dim() const { return dim_; }
  const float* row(size_t i) const { return x_.data() + i * dim_; }
  float label(size_t i) const { return y_[i]; }
  const std::vector<float>& features() const { return x_; }
  const std::vector<float>& labels() const { return y_; }

  /// Splits into train/test by shuffling with `seed`.
  void Split(double train_fraction, uint64_t seed, MlDataset* train,
             MlDataset* test) const;

 private:
  size_t dim_;
  std::vector<float> x_;
  std::vector<float> y_;
};

}  // namespace robopt

#endif  // ROBOPT_ML_ML_DATASET_H_
