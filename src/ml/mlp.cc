#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>

#include "common/rng.h"

namespace robopt {

MlpRegressor::MlpRegressor() : params_(Params()) {}

MlpRegressor::MlpRegressor(Params params) : params_(params) {}

Status MlpRegressor::Train(const MlDataset& data) {
  const size_t n = data.size();
  if (n == 0) return Status::InvalidArgument("empty training set");
  dim_ = data.dim();
  const size_t hidden = static_cast<size_t>(params_.hidden_units);

  // Standardize features.
  mean_.assign(dim_, 0.0);
  inv_std_.assign(dim_, 1.0);
  for (size_t i = 0; i < n; ++i) {
    const float* row = data.row(i);
    for (size_t j = 0; j < dim_; ++j) mean_[j] += row[j];
  }
  for (double& m : mean_) m /= static_cast<double>(n);
  std::vector<double> var(dim_, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const float* row = data.row(i);
    for (size_t j = 0; j < dim_; ++j) {
      const double d = row[j] - mean_[j];
      var[j] += d * d;
    }
  }
  for (size_t j = 0; j < dim_; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(n));
    inv_std_[j] = sd > 1e-12 ? 1.0 / sd : 0.0;
  }

  // Transformed labels, centered for a stable output bias.
  std::vector<double> labels(n);
  double label_mean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    labels[i] = params_.log_label
                    ? std::log1p(static_cast<double>(data.label(i)))
                    : data.label(i);
    label_mean += labels[i];
  }
  label_mean /= static_cast<double>(n);

  // He initialization.
  Rng rng(params_.seed);
  w1_.assign(hidden * dim_, 0.0);
  b1_.assign(hidden, 0.0);
  w2_.assign(hidden, 0.0);
  b2_ = label_mean;
  const double scale1 = std::sqrt(2.0 / static_cast<double>(dim_));
  for (double& w : w1_) w = rng.NextGaussian() * scale1;
  const double scale2 = std::sqrt(2.0 / static_cast<double>(hidden));
  for (double& w : w2_) w = rng.NextGaussian() * scale2;

  std::vector<double> vw1(w1_.size(), 0.0);
  std::vector<double> vb1(b1_.size(), 0.0);
  std::vector<double> vw2(w2_.size(), 0.0);
  double vb2 = 0.0;

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> z(dim_);
  std::vector<double> h(hidden);
  std::vector<double> gw1(w1_.size());
  std::vector<double> gb1(hidden);
  std::vector<double> gw2(hidden);

  const size_t batch = std::max(1, params_.batch_size);
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    // Deterministic shuffle per epoch.
    for (size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    for (size_t start = 0; start < n; start += batch) {
      const size_t end = std::min(start + batch, n);
      std::fill(gw1.begin(), gw1.end(), 0.0);
      std::fill(gb1.begin(), gb1.end(), 0.0);
      std::fill(gw2.begin(), gw2.end(), 0.0);
      double gb2 = 0.0;
      for (size_t bi = start; bi < end; ++bi) {
        const size_t idx = order[bi];
        const float* row = data.row(idx);
        for (size_t j = 0; j < dim_; ++j) {
          z[j] = (row[j] - mean_[j]) * inv_std_[j];
        }
        // Forward.
        double y = b2_;
        for (size_t u = 0; u < hidden; ++u) {
          double a = b1_[u];
          const double* wrow = w1_.data() + u * dim_;
          for (size_t j = 0; j < dim_; ++j) a += wrow[j] * z[j];
          h[u] = a > 0.0 ? a : 0.0;
          y += w2_[u] * h[u];
        }
        // Backward (squared loss).
        const double err = y - labels[idx];
        gb2 += err;
        for (size_t u = 0; u < hidden; ++u) {
          gw2[u] += err * h[u];
          if (h[u] > 0.0) {
            const double delta = err * w2_[u];
            gb1[u] += delta;
            double* grow = gw1.data() + u * dim_;
            for (size_t j = 0; j < dim_; ++j) grow[j] += delta * z[j];
          }
        }
      }
      const double inv = 1.0 / static_cast<double>(end - start);
      const double lr = params_.learning_rate;
      const double mu = params_.momentum;
      for (size_t i = 0; i < w1_.size(); ++i) {
        vw1[i] = mu * vw1[i] - lr * (gw1[i] * inv + params_.l2 * w1_[i]);
        w1_[i] += vw1[i];
      }
      for (size_t u = 0; u < hidden; ++u) {
        vb1[u] = mu * vb1[u] - lr * gb1[u] * inv;
        b1_[u] += vb1[u];
        vw2[u] = mu * vw2[u] - lr * (gw2[u] * inv + params_.l2 * w2_[u]);
        w2_[u] += vw2[u];
      }
      vb2 = mu * vb2 - lr * gb2 * inv;
      b2_ += vb2;
    }
  }
  return Status::OK();
}

void MlpRegressor::PredictBatch(const float* x, size_t n, size_t dim,
                                float* out) const {
  const size_t hidden = w2_.size();
  std::vector<double> z(dim_);
  for (size_t i = 0; i < n; ++i) {
    const float* row = x + i * dim;
    for (size_t j = 0; j < dim_; ++j) {
      const double value = j < dim ? row[j] : 0.0;
      z[j] = (value - mean_[j]) * inv_std_[j];
    }
    double y = b2_;
    for (size_t u = 0; u < hidden; ++u) {
      double a = b1_[u];
      const double* wrow = w1_.data() + u * dim_;
      for (size_t j = 0; j < dim_; ++j) a += wrow[j] * z[j];
      if (a > 0.0) y += w2_[u] * a;
    }
    if (params_.log_label) y = std::expm1(y);
    out[i] = static_cast<float>(y < 0 ? 0 : y);
  }
}

Status MlpRegressor::Save(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::Internal("cannot open " + path);
  file.precision(17);
  file << "mlp 1\n"
       << dim_ << " " << w2_.size() << " " << (params_.log_label ? 1 : 0)
       << " " << b2_ << "\n";
  for (size_t j = 0; j < dim_; ++j) {
    file << mean_[j] << " " << inv_std_[j] << "\n";
  }
  for (double w : w1_) file << w << "\n";
  for (size_t u = 0; u < w2_.size(); ++u) {
    file << b1_[u] << " " << w2_[u] << "\n";
  }
  return file ? Status::OK() : Status::Internal("write failed: " + path);
}

Status MlpRegressor::Load(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::Internal("cannot open " + path);
  std::string magic;
  int version = 0;
  size_t hidden = 0;
  int log_label = 0;
  file >> magic >> version >> dim_ >> hidden >> log_label >> b2_;
  if (magic != "mlp") {
    return Status::InvalidArgument("not an mlp file: " + path);
  }
  params_.log_label = log_label != 0;
  params_.hidden_units = static_cast<int>(hidden);
  mean_.assign(dim_, 0.0);
  inv_std_.assign(dim_, 0.0);
  for (size_t j = 0; j < dim_; ++j) file >> mean_[j] >> inv_std_[j];
  w1_.assign(hidden * dim_, 0.0);
  for (double& w : w1_) file >> w;
  b1_.assign(hidden, 0.0);
  w2_.assign(hidden, 0.0);
  for (size_t u = 0; u < hidden; ++u) file >> b1_[u] >> w2_[u];
  return file ? Status::OK() : Status::Internal("truncated file: " + path);
}

}  // namespace robopt
