#ifndef ROBOPT_ML_SIMD_DISPATCH_H_
#define ROBOPT_ML_SIMD_DISPATCH_H_

#include <cstddef>
#include <cstdint>

namespace robopt {
namespace simd {

/// The instruction-set lanes the hot inner loops can run on. Exactly one is
/// active per process; every lane computes bit-identical results for the
/// exact primitives below (min/max, add, or, compare are exact in IEEE-754
/// and integer arithmetic), so lane selection is a pure speed choice.
enum class Lane {
  kScalar = 0,  ///< Portable C++ — always compiled, always correct.
  kAvx2 = 1,    ///< x86-64 with AVX2 (checked at runtime via cpuid).
  kNeon = 2,    ///< aarch64 Advanced SIMD (baseline on every aarch64).
};

/// Human-readable lane name ("scalar" / "avx2" / "neon").
const char* LaneName(Lane lane);

/// The lane the process resolved at first use: the best lane this binary
/// compiled *and* this CPU supports, unless the `ROBOPT_SIMD` environment
/// variable (read once) pins it down. Accepted values: `scalar`, `avx2`,
/// `neon`, `auto` (same as unset). A requested lane the machine cannot run
/// falls back to the best available one rather than crashing — pinning is a
/// test/ops override, not a correctness knob.
Lane ActiveLane();

/// Test hook: overrides the resolved lane for the rest of the process (same
/// fallback rule as the env variable). Not synchronized against concurrent
/// primitive calls — call it from test setup, before spinning up threads.
void ForceLaneForTest(Lane lane);

/// The function-pointer table of one lane. Resolved once by ActiveLane();
/// callers grab it via Ops() and call through it in their inner loops.
struct OpsTable {
  /// Per-feature extrema of a row group: for each feature f in [0, dim),
  /// minv[f]/maxv[f] = min/max of rows[i * dim + f] over i in [0, w).
  /// Returns true when any scanned value is NaN — the caller must then
  /// treat the summaries as unusable and fall back to per-row logic
  /// (vector min/max would silently drop NaNs, so the flag is accumulated
  /// via unordered compares alongside them).
  bool (*min_max_group_f32)(const float* rows, size_t w, size_t dim,
                            float* minv, float* maxv);
  /// dst[i] = a[i] + b[i] — the Concat feature-row merge.
  void (*add_rows_f32)(float* dst, const float* a, const float* b, size_t n);
  /// dst[i] = a[i] | b[i] — the Concat assignment-row merge.
  void (*or_bytes)(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                   size_t n);
  /// Index of the first element of keys[0, n) equal to `key`, or n — the
  /// PruneBoundary packed-footprint probe over a flat key array.
  size_t (*find_u64)(const uint64_t* keys, size_t n, uint64_t key);
};

/// The active lane's table (initialized on first call, then constant).
const OpsTable& Ops();

// Per-lane tables. kScalarOps is always valid; the AVX2/NEON tables are
// compiled only when the toolchain targets that architecture (their extern
// declarations resolve inside simd_dispatch.cc behind the same #if guards).
extern const OpsTable kScalarOps;
#if defined(__x86_64__) || defined(_M_X64)
extern const OpsTable kAvx2Ops;
#endif
#if defined(__aarch64__)
extern const OpsTable kNeonOps;
#endif

}  // namespace simd
}  // namespace robopt

#endif  // ROBOPT_ML_SIMD_DISPATCH_H_
