#include "ml/simd_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace robopt {
namespace simd {
namespace {

bool ScalarMinMaxGroupF32(const float* rows, size_t w, size_t dim,
                          float* minv, float* maxv) {
  bool has_nan = false;
  for (size_t f = 0; f < dim; ++f) {
    float mn = rows[f];
    float mx = mn;
    has_nan |= mn != mn;
    for (size_t i = 1; i < w; ++i) {
      const float v = rows[i * dim + f];
      mn = v < mn ? v : mn;
      mx = v > mx ? v : mx;
      has_nan |= v != v;
    }
    minv[f] = mn;
    maxv[f] = mx;
  }
  return has_nan;
}

void ScalarAddRowsF32(float* dst, const float* a, const float* b, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = a[i] + b[i];
}

void ScalarOrBytes(uint8_t* dst, const uint8_t* a, const uint8_t* b,
                   size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = a[i] | b[i];
}

size_t ScalarFindU64(const uint64_t* keys, size_t n, uint64_t key) {
  for (size_t i = 0; i < n; ++i) {
    if (keys[i] == key) return i;
  }
  return n;
}

/// Best lane this binary compiled and this CPU can run.
Lane BestAvailableLane() {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx2")) return Lane::kAvx2;
  return Lane::kScalar;
#elif defined(__aarch64__)
  return Lane::kNeon;
#else
  return Lane::kScalar;
#endif
}

/// Clamps a requested lane to what the machine can actually execute.
Lane ClampLane(Lane requested) {
  const Lane best = BestAvailableLane();
  switch (requested) {
    case Lane::kScalar:
      return Lane::kScalar;
    case Lane::kAvx2:
      return best == Lane::kAvx2 ? Lane::kAvx2 : best;
    case Lane::kNeon:
      return best == Lane::kNeon ? Lane::kNeon : best;
  }
  return Lane::kScalar;
}

Lane ResolveFromEnv() {
  const char* env = std::getenv("ROBOPT_SIMD");
  if (env == nullptr || std::strcmp(env, "auto") == 0 || env[0] == '\0') {
    return BestAvailableLane();
  }
  if (std::strcmp(env, "scalar") == 0) return ClampLane(Lane::kScalar);
  if (std::strcmp(env, "avx2") == 0) return ClampLane(Lane::kAvx2);
  if (std::strcmp(env, "neon") == 0) return ClampLane(Lane::kNeon);
  // Unrecognized value: ignore it rather than crash a production process.
  return BestAvailableLane();
}

const OpsTable* TableFor(Lane lane) {
  switch (lane) {
    case Lane::kScalar:
      return &kScalarOps;
    case Lane::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return &kAvx2Ops;
#else
      return &kScalarOps;
#endif
    case Lane::kNeon:
#if defined(__aarch64__)
      return &kNeonOps;
#else
      return &kScalarOps;
#endif
  }
  return &kScalarOps;
}

/// The process-wide lane/table, published together. Relaxed loads are fine:
/// both values are immutable after first publication (ForceLaneForTest is
/// documented single-threaded), and any racing first-use would just resolve
/// the same env/cpuid answer again.
struct Resolved {
  Lane lane;
  const OpsTable* table;
};

std::atomic<const Resolved*> g_resolved{nullptr};

const Resolved* ResolveOnce() {
  const Resolved* current = g_resolved.load(std::memory_order_acquire);
  if (current != nullptr) return current;
  const Lane lane = ResolveFromEnv();
  static Resolved storage;  // Zero-init is fine; written before publish.
  storage.lane = lane;
  storage.table = TableFor(lane);
  const Resolved* expected = nullptr;
  if (g_resolved.compare_exchange_strong(expected, &storage,
                                         std::memory_order_acq_rel)) {
    return &storage;
  }
  return expected;  // Another thread won the race with identical values.
}

}  // namespace

const OpsTable kScalarOps = {
    ScalarMinMaxGroupF32,
    ScalarAddRowsF32,
    ScalarOrBytes,
    ScalarFindU64,
};

const char* LaneName(Lane lane) {
  switch (lane) {
    case Lane::kScalar:
      return "scalar";
    case Lane::kAvx2:
      return "avx2";
    case Lane::kNeon:
      return "neon";
  }
  return "scalar";
}

Lane ActiveLane() { return ResolveOnce()->lane; }

const OpsTable& Ops() { return *ResolveOnce()->table; }

void ForceLaneForTest(Lane lane) {
  const Lane clamped = ClampLane(lane);
  static Resolved forced;
  forced.lane = clamped;
  forced.table = TableFor(clamped);
  g_resolved.store(&forced, std::memory_order_release);
}

}  // namespace simd
}  // namespace robopt
