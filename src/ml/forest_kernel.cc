#include "ml/forest_kernel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/thread_pool.h"
#include "ml/simd_dispatch.h"

namespace robopt {

static_assert(ForestKernel::kRowBlock % ForestKernel::kGroupRows == 0,
              "speculation groups must tile the accumulator block exactly");

namespace {
std::atomic<uint64_t> g_rows_scored{0};
std::atomic<uint64_t> g_batches{0};

/// Raw pointers of the node pool, hoisted once per batch so the inner loops
/// never touch vector objects.
struct PoolView {
  const int32_t* feature;
  const float* threshold;
  const int32_t* left;
  const int32_t* right;
  const float* value;
  const uint8_t* threshold_q8;
  const float* q8_base;  ///< Indexed by feature.
  const float* q8_step;
};

/// The split threshold of `node` — exact, or dequantized from the 8-bit
/// table. Only valid on internal nodes (feature >= 0).
template <bool kQuantized>
inline float NodeThreshold(const PoolView& p, int32_t node) {
  if (kQuantized) {
    const int32_t f = p.feature[node];
    return p.q8_base[f] +
           p.q8_step[f] * static_cast<float>(p.threshold_q8[node]);
  }
  return p.threshold[node];
}

/// The scalar-lane / guarded block walk: trees outer, rows inner, per-row
/// double accumulators in fixed tree order. Reads a feature index beyond
/// `dim` as 0.0, exactly like the reference path.
template <bool kQuantized>
void WalkBlockScalar(const PoolView& p, const int32_t* roots,
                     size_t num_trees, const float* bx, size_t rows,
                     size_t dim, double* acc) {
  for (size_t t = 0; t < num_trees; ++t) {
    const int32_t root = roots[t];
    for (size_t row = 0; row < rows; ++row) {
      const float* r = bx + row * dim;
      int32_t node = root;
      int32_t f = p.feature[node];
      while (f >= 0) {
        const float v = static_cast<size_t>(f) < dim ? r[f] : 0.0f;
        node = v <= NodeThreshold<kQuantized>(p, node) ? p.left[node]
                                                       : p.right[node];
        f = p.feature[node];
      }
      acc[row] += p.value[node];
    }
  }
}

/// The extrema-speculation walk (non-scalar lanes, every split feature
/// < dim): per kGroupRows-row group, a SIMD pass yields per-feature min/max
/// summaries, then one scalar walk descends for the whole group —
/// max[f] <= threshold sends every row left, min[f] > threshold sends every
/// row right. A group that straddles a split (or contains a NaN, which the
/// summary pass flags because vector min/max would silently drop it)
/// diverges to interleaved per-row walks from that node, so decisions are
/// exactly the reference's. Accumulation stays per-row in fixed tree order:
/// bit-identical to WalkBlockScalar.
template <bool kQuantized>
void WalkBlockGrouped(const PoolView& p, const int32_t* roots,
                      size_t num_trees, const float* bx, size_t rows,
                      size_t dim, double* acc, float* minv, float* maxv) {
  constexpr size_t W = ForestKernel::kGroupRows;
  const auto min_max_group = simd::Ops().min_max_group_f32;
  const size_t grouped = rows / W * W;
  int32_t nd[W];
  for (size_t r = 0; r < grouped; r += W) {
    const float* g = bx + r * dim;
    const bool nan_group = min_max_group(g, W, dim, minv, maxv);
    for (size_t t = 0; t < num_trees; ++t) {
      int32_t node = roots[t];
      if (!nan_group) {
        for (;;) {
          const int32_t f = p.feature[node];
          if (f < 0) break;
          const float tv = NodeThreshold<kQuantized>(p, node);
          if (maxv[f] <= tv) {  // Every row's value <= tv: all go left.
            node = p.left[node];
            continue;
          }
          if (!(minv[f] <= tv)) {  // Every row's value > tv: all go right.
            node = p.right[node];
            continue;
          }
          break;  // The group straddles this split: diverge below.
        }
      }
      if (p.feature[node] < 0) {
        const double leaf = static_cast<double>(p.value[node]);
        for (size_t i = 0; i < W; ++i) acc[r + i] += leaf;
      } else {
        for (size_t i = 0; i < W; ++i) nd[i] = node;
        for (;;) {
          int32_t alive = -1;  // AND of features: < 0 iff all rows leafed.
          for (size_t i = 0; i < W; ++i) {
            const int32_t c = nd[i];
            const int32_t f = p.feature[c];
            if (f >= 0) {
              nd[i] = g[i * dim + f] <= NodeThreshold<kQuantized>(p, c)
                          ? p.left[c]
                          : p.right[c];
            }
            alive &= f;
          }
          if (alive < 0) break;
        }
        for (size_t i = 0; i < W; ++i) {
          acc[r + i] += static_cast<double>(p.value[nd[i]]);
        }
      }
    }
  }
  // Tail rows below one group: plain per-row walks (every feature < dim
  // here, so the unguarded read matches the reference's guarded one).
  for (size_t r = grouped; r < rows; ++r) {
    const float* row = bx + r * dim;
    for (size_t t = 0; t < num_trees; ++t) {
      int32_t node = roots[t];
      int32_t f = p.feature[node];
      while (f >= 0) {
        node = row[f] <= NodeThreshold<kQuantized>(p, node) ? p.left[node]
                                                            : p.right[node];
        f = p.feature[node];
      }
      acc[r] += static_cast<double>(p.value[node]);
    }
  }
}

}  // namespace

uint64_t ForestKernel::TotalRowsScored() {
  return g_rows_scored.load(std::memory_order_relaxed);
}

uint64_t ForestKernel::TotalBatches() {
  return g_batches.load(std::memory_order_relaxed);
}

void ForestKernel::Clear() {
  roots_.clear();
  feature_.clear();
  threshold_.clear();
  left_.clear();
  right_.clear();
  value_.clear();
  max_feature_ = -1;
  threshold_q8_.clear();
  q8_base_.clear();
  q8_step_.clear();
}

void ForestKernel::Build(const std::vector<DecisionTree>& trees) {
  Clear();
  size_t total = 0;
  for (const DecisionTree& tree : trees) {
    total += std::max<size_t>(tree.num_nodes(), 1);
  }
  roots_.reserve(trees.size());
  feature_.reserve(total);
  threshold_.reserve(total);
  left_.reserve(total);
  right_.reserve(total);
  value_.reserve(total);
  for (const DecisionTree& tree : trees) {
    const auto base = static_cast<int32_t>(feature_.size());
    roots_.push_back(base);
    const size_t count = tree.num_nodes();
    if (count == 0) {
      feature_.push_back(-1);
      threshold_.push_back(0.0f);
      left_.push_back(-1);
      right_.push_back(-1);
      value_.push_back(0.0f);
      continue;
    }
    for (size_t i = 0; i < count; ++i) {
      const int32_t feature = tree.node_feature(i);
      feature_.push_back(feature);
      threshold_.push_back(tree.node_threshold(i));
      // Rebase tree-local child indices onto the pool; leaves keep -1.
      left_.push_back(feature >= 0 ? base + tree.node_left(i) : -1);
      right_.push_back(feature >= 0 ? base + tree.node_right(i) : -1);
      value_.push_back(tree.node_value(i));
      if (feature > max_feature_) max_feature_ = feature;
    }
  }
  BuildQuantizedTables();
}

void ForestKernel::BuildQuantizedTables() {
  const size_t nodes = feature_.size();
  if (nodes == 0) return;
  threshold_q8_.assign(nodes, 0);
  const size_t nf = num_features();
  q8_base_.assign(nf, 0.0f);
  q8_step_.assign(nf, 0.0f);
  if (nf == 0) return;
  // Per-feature threshold range over all splits of that feature.
  std::vector<float> lo(nf, std::numeric_limits<float>::infinity());
  std::vector<float> hi(nf, -std::numeric_limits<float>::infinity());
  for (size_t i = 0; i < nodes; ++i) {
    const int32_t f = feature_[i];
    if (f < 0) continue;
    lo[f] = std::min(lo[f], threshold_[i]);
    hi[f] = std::max(hi[f], threshold_[i]);
  }
  std::vector<double> step(nf, 0.0);
  for (size_t f = 0; f < nf; ++f) {
    if (!(lo[f] <= hi[f])) continue;  // Feature never split on.
    step[f] = (static_cast<double>(hi[f]) - static_cast<double>(lo[f])) /
              255.0;
    q8_base_[f] = lo[f];
    q8_step_[f] = static_cast<float>(step[f]);
  }
  for (size_t i = 0; i < nodes; ++i) {
    const int32_t f = feature_[i];
    if (f < 0 || step[f] == 0.0) continue;  // Leaf, or exact (single value).
    const double q = std::nearbyint(
        (static_cast<double>(threshold_[i]) - static_cast<double>(lo[f])) /
        step[f]);
    threshold_q8_[i] =
        static_cast<uint8_t>(q < 0.0 ? 0.0 : (q > 255.0 ? 255.0 : q));
  }
}

float ForestKernel::QuantizationMaxAbsError() const {
  float worst = 0.0f;
  for (size_t i = 0; i < feature_.size(); ++i) {
    const int32_t f = feature_[i];
    if (f < 0) continue;
    const float dequantized =
        q8_base_[f] + q8_step_[f] * static_cast<float>(threshold_q8_[i]);
    worst = std::max(worst, std::fabs(threshold_[i] - dequantized));
  }
  return worst;
}

float ForestKernel::PredictTree(size_t t, const float* row, size_t dim) const {
  const int32_t* feature = feature_.data();
  const float* threshold = threshold_.data();
  const int32_t* left = left_.data();
  const int32_t* right = right_.data();
  int32_t node = roots_[t];
  int32_t f = feature[node];
  while (f >= 0) {
    const float v = static_cast<size_t>(f) < dim ? row[f] : 0.0f;
    node = v <= threshold[node] ? left[node] : right[node];
    f = feature[node];
  }
  return value_[node];
}

void ForestKernel::PredictBatch(const float* x, size_t n, size_t dim,
                                float* out, bool log_label, int num_threads,
                                bool quantized) const {
  if (n == 0) return;
  g_rows_scored.fetch_add(n, std::memory_order_relaxed);
  g_batches.fetch_add(1, std::memory_order_relaxed);
  if (roots_.empty()) {
    std::fill(out, out + n, 0.0f);
    return;
  }
  const double inv = 1.0 / static_cast<double>(roots_.size());
  const int threads = num_threads == 0 ? ThreadPool::HardwareThreads()
                                       : num_threads;
  const size_t num_blocks = (n + kRowBlock - 1) / kRowBlock;
  const PoolView pool{feature_.data(), threshold_.data(), left_.data(),
                      right_.data(),   value_.data(),     threshold_q8_.data(),
                      q8_base_.data(), q8_step_.data()};
  const int32_t* roots = roots_.data();
  const size_t num_trees = roots_.size();
  // The grouped (extrema-speculation) kernel reads row[f] unguarded and
  // only runs when every split feature is in range; narrower batches take
  // the guarded scalar walk, as does the pinned scalar lane (for which the
  // summary pass would cost about what it saves).
  const bool grouped = num_features() <= dim &&
                       simd::ActiveLane() != simd::Lane::kScalar;
  const bool quantize = quantized && has_quantized();
  ParallelFor(threads, 0, num_blocks, 1, [&](size_t block0, size_t block1) {
    double acc[kRowBlock];
    // Per-feature min/max summary scratch of the grouped kernel, reused
    // across every group this shard walks.
    std::vector<float> extrema(grouped ? 2 * dim : 0);
    for (size_t block = block0; block < block1; ++block) {
      const size_t row0 = block * kRowBlock;
      const size_t rows = std::min(n - row0, kRowBlock);
      const float* bx = x + row0 * dim;
      std::fill(acc, acc + rows, 0.0);
      if (grouped) {
        float* minv = extrema.data();
        float* maxv = extrema.data() + dim;
        if (quantize) {
          WalkBlockGrouped<true>(pool, roots, num_trees, bx, rows, dim, acc,
                                 minv, maxv);
        } else {
          WalkBlockGrouped<false>(pool, roots, num_trees, bx, rows, dim, acc,
                                  minv, maxv);
        }
      } else if (quantize) {
        WalkBlockScalar<true>(pool, roots, num_trees, bx, rows, dim, acc);
      } else {
        WalkBlockScalar<false>(pool, roots, num_trees, bx, rows, dim, acc);
      }
      for (size_t row = 0; row < rows; ++row) {
        double result = acc[row] * inv;
        if (log_label) result = std::expm1(result);
        out[row0 + row] = static_cast<float>(result < 0 ? 0 : result);
      }
    }
  });
}

}  // namespace robopt
