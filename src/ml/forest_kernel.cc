#include "ml/forest_kernel.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/thread_pool.h"

namespace robopt {

namespace {
std::atomic<uint64_t> g_rows_scored{0};
std::atomic<uint64_t> g_batches{0};
}  // namespace

uint64_t ForestKernel::TotalRowsScored() {
  return g_rows_scored.load(std::memory_order_relaxed);
}

uint64_t ForestKernel::TotalBatches() {
  return g_batches.load(std::memory_order_relaxed);
}

void ForestKernel::Clear() {
  roots_.clear();
  feature_.clear();
  threshold_.clear();
  left_.clear();
  right_.clear();
  value_.clear();
}

void ForestKernel::Build(const std::vector<DecisionTree>& trees) {
  Clear();
  size_t total = 0;
  for (const DecisionTree& tree : trees) {
    total += std::max<size_t>(tree.num_nodes(), 1);
  }
  roots_.reserve(trees.size());
  feature_.reserve(total);
  threshold_.reserve(total);
  left_.reserve(total);
  right_.reserve(total);
  value_.reserve(total);
  for (const DecisionTree& tree : trees) {
    const auto base = static_cast<int32_t>(feature_.size());
    roots_.push_back(base);
    const size_t count = tree.num_nodes();
    if (count == 0) {
      feature_.push_back(-1);
      threshold_.push_back(0.0f);
      left_.push_back(-1);
      right_.push_back(-1);
      value_.push_back(0.0f);
      continue;
    }
    for (size_t i = 0; i < count; ++i) {
      const int32_t feature = tree.node_feature(i);
      feature_.push_back(feature);
      threshold_.push_back(tree.node_threshold(i));
      // Rebase tree-local child indices onto the pool; leaves keep -1.
      left_.push_back(feature >= 0 ? base + tree.node_left(i) : -1);
      right_.push_back(feature >= 0 ? base + tree.node_right(i) : -1);
      value_.push_back(tree.node_value(i));
    }
  }
}

float ForestKernel::PredictTree(size_t t, const float* row, size_t dim) const {
  const int32_t* feature = feature_.data();
  const float* threshold = threshold_.data();
  const int32_t* left = left_.data();
  const int32_t* right = right_.data();
  int32_t node = roots_[t];
  int32_t f = feature[node];
  while (f >= 0) {
    const float v = static_cast<size_t>(f) < dim ? row[f] : 0.0f;
    node = v <= threshold[node] ? left[node] : right[node];
    f = feature[node];
  }
  return value_[node];
}

void ForestKernel::PredictBatch(const float* x, size_t n, size_t dim,
                                float* out, bool log_label,
                                int num_threads) const {
  if (n == 0) return;
  g_rows_scored.fetch_add(n, std::memory_order_relaxed);
  g_batches.fetch_add(1, std::memory_order_relaxed);
  if (roots_.empty()) {
    std::fill(out, out + n, 0.0f);
    return;
  }
  // Same blocking as the per-tree reference path: trees in the outer loop,
  // rows of a fixed-size block in the inner one, per-row double
  // accumulators in fixed tree order — so the output is bit-identical to
  // the reference for every thread count.
  const double inv = 1.0 / static_cast<double>(roots_.size());
  const int threads = num_threads == 0 ? ThreadPool::HardwareThreads()
                                       : num_threads;
  const size_t num_blocks = (n + kRowBlock - 1) / kRowBlock;
  const int32_t* feature = feature_.data();
  const float* threshold = threshold_.data();
  const int32_t* left = left_.data();
  const int32_t* right = right_.data();
  const float* value = value_.data();
  const size_t num_trees = roots_.size();
  ParallelFor(threads, 0, num_blocks, 1, [&](size_t block0, size_t block1) {
    double acc[kRowBlock];
    for (size_t block = block0; block < block1; ++block) {
      const size_t row0 = block * kRowBlock;
      const size_t row1 = std::min(n, row0 + kRowBlock);
      std::fill(acc, acc + (row1 - row0), 0.0);
      for (size_t t = 0; t < num_trees; ++t) {
        const int32_t root = roots_[t];
        for (size_t row = row0; row < row1; ++row) {
          const float* r = x + row * dim;
          int32_t node = root;
          int32_t f = feature[node];
          while (f >= 0) {
            const float v = static_cast<size_t>(f) < dim ? r[f] : 0.0f;
            node = v <= threshold[node] ? left[node] : right[node];
            f = feature[node];
          }
          acc[row - row0] += value[node];
        }
      }
      for (size_t row = row0; row < row1; ++row) {
        double result = acc[row - row0] * inv;
        if (log_label) result = std::expm1(result);
        out[row] = static_cast<float>(result < 0 ? 0 : result);
      }
    }
  });
}

}  // namespace robopt
