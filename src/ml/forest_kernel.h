#ifndef ROBOPT_ML_FOREST_KERNEL_H_
#define ROBOPT_ML_FOREST_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/decision_tree.h"

namespace robopt {

/// All trees of a trained forest flattened into one contiguous
/// structure-of-arrays node pool: separate `feature`/`threshold`/`left`/
/// `right`/`value` arrays plus per-tree root offsets. Child indices are
/// absolute pool indices, so batch inference is an iterative block-major
/// walk over five dense arrays instead of 60 per-tree traversals of 60
/// separately allocated node vectors per row.
///
/// The kernel is a pure data layout change: traversal decisions, leaf
/// values and accumulation order match the per-tree reference path
/// (RandomForest::PredictBatchReference) exactly, so predictions are
/// bit-identical to it for every thread count.
class ForestKernel {
 public:
  /// Rows per inference block. Fixed (never derived from the thread count)
  /// so block boundaries — and therefore float accumulation order — are
  /// identical for every num_threads. 64 rows of accumulators stay resident
  /// in L1 while the node arrays are walked for the whole block.
  static constexpr size_t kRowBlock = 64;

  ForestKernel() = default;

  /// Rebuilds the pool from `trees`. A node-less tree (a default-constructed
  /// DecisionTree) contributes one 0-valued leaf, matching its Predict.
  void Build(const std::vector<DecisionTree>& trees);
  void Clear();

  size_t num_trees() const { return roots_.size(); }
  size_t num_nodes() const { return feature_.size(); }
  bool empty() const { return roots_.empty(); }

  /// Mean prediction over all trees for `n` rows of `dim` floats; with
  /// `log_label` the mean is mapped back through expm1 and clamped at 0,
  /// exactly as RandomForest does. `num_threads`: 0 = hardware concurrency,
  /// 1 = serial; results are bit-identical for every value. An empty kernel
  /// predicts all zeros.
  void PredictBatch(const float* x, size_t n, size_t dim, float* out,
                    bool log_label, int num_threads) const;

  /// Single-row walk of tree `t` (exposed for tests).
  float PredictTree(size_t t, const float* row, size_t dim) const;

  /// Process-wide inference telemetry: rows / batches scored through any
  /// ForestKernel since process start. Two relaxed atomic adds per *batch*
  /// (never per row), so the counters stay on unconditionally; the
  /// observability layer exports them as
  /// `robopt_ml_forest_rows_scored_total` / `_batches_total`.
  static uint64_t TotalRowsScored();
  static uint64_t TotalBatches();

 private:
  std::vector<int32_t> roots_;      ///< Pool index of each tree's root.
  std::vector<int32_t> feature_;    ///< < 0 marks a leaf.
  std::vector<float> threshold_;
  std::vector<int32_t> left_;       ///< Absolute pool index of the <= child.
  std::vector<int32_t> right_;      ///< Absolute pool index of the > child.
  std::vector<float> value_;        ///< Leaf prediction.
};

}  // namespace robopt

#endif  // ROBOPT_ML_FOREST_KERNEL_H_
