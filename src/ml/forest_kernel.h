#ifndef ROBOPT_ML_FOREST_KERNEL_H_
#define ROBOPT_ML_FOREST_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned_vector.h"
#include "ml/decision_tree.h"

namespace robopt {

/// All trees of a trained forest flattened into one contiguous
/// structure-of-arrays node pool: separate `feature`/`threshold`/`left`/
/// `right`/`value` arrays plus per-tree root offsets. Child indices are
/// absolute pool indices, so batch inference is an iterative block-major
/// walk over five dense arrays instead of 60 per-tree traversals of 60
/// separately allocated node vectors per row. Every SoA array starts on a
/// 64-byte boundary (AlignedVector), so vector loads never split a cache
/// line.
///
/// Exact mode is a pure data-layout + scheduling change: traversal
/// decisions, leaf values and accumulation order match the per-tree
/// reference path (RandomForest::PredictBatchReference) exactly, so
/// predictions are bit-identical to it for every thread count and every
/// SIMD dispatch lane (see DESIGN.md, "SIMD inference & quantization").
///
/// On a non-scalar lane, PredictBatch runs the extrema-speculation kernel:
/// a SIMD pass computes per-feature min/max summaries of each 16-row group,
/// and one *scalar* walk then descends for the whole group at once —
/// max[f] <= t proves every row goes left, min[f] > t proves every row goes
/// right. Enumeration rows are near-duplicates (neighbors differ in a few
/// one-hot cells), so ~97% of (group, tree) walks never diverge; a group
/// that straddles a split falls back to per-row walks from that node. The
/// design is gather-free: the only SIMD is sequential-streaming min/max,
/// and the traversal itself stays scalar compares — which is also why it is
/// bit-stable (min/max and compares are exact; NaN-carrying groups are
/// detected in the summary pass and walked per-row).
///
/// Build() additionally quantizes every split threshold to 8 bits with a
/// per-feature affine map (threshold_q8()); quantized inference dequantizes
/// thresholds on the fly and is *not* bit-identical to exact mode — callers
/// opt in per batch, and the serving layer only turns it on after a
/// measured holdout log1p-MAE bound passes (ServeOptions).
class ForestKernel {
 public:
  /// Rows per inference block. Fixed (never derived from the thread count)
  /// so block boundaries — and therefore float accumulation order — are
  /// identical for every num_threads. 64 rows of accumulators stay resident
  /// in L1 while the node arrays are walked for the whole block.
  static constexpr size_t kRowBlock = 64;

  /// Rows per extrema-speculation group (kRowBlock is a multiple). 16 rows
  /// keeps the min/max summary pass cheap relative to the walks it saves
  /// while amortizing each non-diverging walk over 16 rows; measured on the
  /// enumeration workload, groups of 16 diverge on only ~3% of walks.
  static constexpr size_t kGroupRows = 16;

  ForestKernel() = default;

  /// Rebuilds the pool from `trees`: one pass counts nodes so every array
  /// is reserved at its exact final size, a second pass fills them, then
  /// the per-feature 8-bit threshold tables are derived. A node-less tree
  /// (a default-constructed DecisionTree) contributes one 0-valued leaf,
  /// matching its Predict.
  void Build(const std::vector<DecisionTree>& trees);
  void Clear();

  size_t num_trees() const { return roots_.size(); }
  size_t num_nodes() const { return feature_.size(); }
  bool empty() const { return roots_.empty(); }

  /// 1 + the largest feature index any split tests (0 for a kernel with no
  /// splits). Batches narrower than this take a guarded scalar path that
  /// reads missing features as 0, exactly like the reference.
  size_t num_features() const {
    return max_feature_ < 0 ? 0 : static_cast<size_t>(max_feature_) + 1;
  }

  /// True once Build() derived the 8-bit threshold tables (any non-empty
  /// kernel).
  bool has_quantized() const { return !threshold_q8_.empty(); }

  /// Test hook: every SoA node array starts on a 64-byte boundary (the
  /// AlignedVector guarantee the SIMD lanes rely on).
  bool node_arrays_aligned() const {
    return IsAligned(feature_.data()) && IsAligned(threshold_.data()) &&
           IsAligned(left_.data()) && IsAligned(right_.data()) &&
           IsAligned(value_.data()) && IsAligned(threshold_q8_.data());
  }

  /// Mean prediction over all trees for `n` rows of `dim` floats; with
  /// `log_label` the mean is mapped back through expm1 and clamped at 0,
  /// exactly as RandomForest does. `num_threads`: 0 = hardware concurrency,
  /// 1 = serial. In exact mode (`quantized` false) results are bit-identical
  /// to the reference for every thread count and dispatch lane; in
  /// quantized mode they are deterministic (same inputs -> same bits,
  /// across lanes and thread counts too) but approximate. An empty kernel
  /// predicts all zeros.
  void PredictBatch(const float* x, size_t n, size_t dim, float* out,
                    bool log_label, int num_threads,
                    bool quantized = false) const;

  /// Single-row walk of tree `t` (exposed for tests).
  float PredictTree(size_t t, const float* row, size_t dim) const;

  /// Largest absolute threshold error the 8-bit quantization introduced on
  /// any split: max over nodes of |threshold - dequantized(threshold_q8)|.
  /// 0 for an empty kernel. The per-feature bound is (hi - lo) / 510.
  float QuantizationMaxAbsError() const;

  /// Process-wide inference telemetry: rows / batches scored through any
  /// ForestKernel since process start. Two relaxed atomic adds per *batch*
  /// (never per row, and never for an empty batch — n == 0 returns before
  /// the counters), so the counters stay on unconditionally; the
  /// observability layer exports them as
  /// `robopt_ml_forest_rows_scored_total` / `_batches_total`.
  static uint64_t TotalRowsScored();
  static uint64_t TotalBatches();

 private:
  void BuildQuantizedTables();

  AlignedVector<int32_t> roots_;    ///< Pool index of each tree's root.
  AlignedVector<int32_t> feature_;  ///< < 0 marks a leaf.
  AlignedVector<float> threshold_;
  AlignedVector<int32_t> left_;     ///< Absolute pool index of the <= child.
  AlignedVector<int32_t> right_;    ///< Absolute pool index of the > child.
  AlignedVector<float> value_;      ///< Leaf prediction.
  int32_t max_feature_ = -1;        ///< Largest split feature (-1: none).

  /// 8-bit quantized thresholds, parallel to threshold_: for a split on
  /// feature f, threshold ~= q8_base_[f] + q8_step_[f] * threshold_q8_[i].
  /// The affine map is per feature over [min, max] of that feature's
  /// thresholds, so q8_step_ is 0 (and the dequantized value exact) when a
  /// feature is split at a single threshold value.
  AlignedVector<uint8_t> threshold_q8_;
  AlignedVector<float> q8_base_;  ///< Indexed by feature, num_features().
  AlignedVector<float> q8_step_;
};

}  // namespace robopt

#endif  // ROBOPT_ML_FOREST_KERNEL_H_
