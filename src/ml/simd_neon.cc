// NEON lane of the SIMD dispatch shim — the aarch64 mirror of simd_avx2.cc.
// Advanced SIMD is baseline on aarch64, so no extra compile flags and no
// runtime CPU check are needed; the whole file compiles away elsewhere.

#if defined(__aarch64__)

#include <arm_neon.h>

#include "ml/simd_dispatch.h"

namespace robopt {
namespace simd {
namespace {

// Same structure as the AVX2 lane, 4 floats per vector. vminq/vmaxq drop
// NaNs like their x86 cousins, so NaN presence is accumulated separately
// with unordered self-compares (vceqq on a NaN lane yields 0).
bool NeonMinMaxGroupF32(const float* rows, size_t w, size_t dim, float* minv,
                        float* maxv) {
  uint32x4_t nan_acc = vdupq_n_u32(0);
  size_t f = 0;
  for (; f + 4 <= dim; f += 4) {
    float32x4_t mn = vld1q_f32(rows + f);
    float32x4_t mx = mn;
    nan_acc = vorrq_u32(nan_acc, vmvnq_u32(vceqq_f32(mn, mn)));
    for (size_t i = 1; i < w; ++i) {
      const float32x4_t v = vld1q_f32(rows + i * dim + f);
      mn = vminq_f32(mn, v);
      mx = vmaxq_f32(mx, v);
      nan_acc = vorrq_u32(nan_acc, vmvnq_u32(vceqq_f32(v, v)));
    }
    vst1q_f32(minv + f, mn);
    vst1q_f32(maxv + f, mx);
  }
  bool has_nan = vmaxvq_u32(nan_acc) != 0;
  for (; f < dim; ++f) {
    float mn = rows[f];
    float mx = mn;
    has_nan |= mn != mn;
    for (size_t i = 1; i < w; ++i) {
      const float v = rows[i * dim + f];
      mn = v < mn ? v : mn;
      mx = v > mx ? v : mx;
      has_nan |= v != v;
    }
    minv[f] = mn;
    maxv[f] = mx;
  }
  return has_nan;
}

void NeonAddRowsF32(float* dst, const float* a, const float* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(dst + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] + b[i];
}

void NeonOrBytes(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, vorrq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] | b[i];
}

size_t NeonFindU64(const uint64_t* keys, size_t n, uint64_t key) {
  const uint64x2_t needle = vdupq_n_u64(key);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t eq = vceqq_u64(vld1q_u64(keys + i), needle);
    if (vgetq_lane_u64(eq, 0) != 0) return i;
    if (vgetq_lane_u64(eq, 1) != 0) return i + 1;
  }
  for (; i < n; ++i) {
    if (keys[i] == key) return i;
  }
  return n;
}

}  // namespace

const OpsTable kNeonOps = {
    NeonMinMaxGroupF32,
    NeonAddRowsF32,
    NeonOrBytes,
    NeonFindU64,
};

}  // namespace simd
}  // namespace robopt

#endif  // defined(__aarch64__)
