#ifndef ROBOPT_ML_MLP_H_
#define ROBOPT_ML_MLP_H_

#include <string>
#include <vector>

#include "ml/model.h"

namespace robopt {

/// A small fully-connected neural network regressor — the third model family
/// the paper evaluated for runtime prediction ("we tried linear regression,
/// random forests, and neural networks and found random forests to be more
/// robust", Section VII-A). One ReLU hidden layer, standardized inputs,
/// log1p labels, mini-batch SGD with momentum. Deterministic per seed.
class MlpRegressor : public RuntimeModel {
 public:
  struct Params {
    int hidden_units = 64;
    int epochs = 60;
    int batch_size = 32;
    double learning_rate = 1e-2;
    double momentum = 0.9;
    double l2 = 1e-5;
    bool log_label = true;
    uint64_t seed = 17;
  };

  MlpRegressor();
  explicit MlpRegressor(Params params);

  Status Train(const MlDataset& data) override;
  void PredictBatch(const float* x, size_t n, size_t dim,
                    float* out) const override;
  Status Save(const std::string& path) const override;
  Status Load(const std::string& path) override;
  std::string Name() const override { return "MlpRegressor"; }

 private:
  Params params_;
  size_t dim_ = 0;
  // Standardization.
  std::vector<double> mean_;
  std::vector<double> inv_std_;
  // Weights: hidden (H x D) + bias (H); output (H) + bias.
  std::vector<double> w1_;
  std::vector<double> b1_;
  std::vector<double> w2_;
  double b2_ = 0.0;
};

}  // namespace robopt

#endif  // ROBOPT_ML_MLP_H_
