#include "ml/ml_dataset.h"

#include <algorithm>
#include <numeric>

namespace robopt {

void MlDataset::Split(double train_fraction, uint64_t seed, MlDataset* train,
                      MlDataset* test) const {
  ROBOPT_CHECK(train->dim() == dim_ && test->dim() == dim_);
  std::vector<size_t> index(size());
  std::iota(index.begin(), index.end(), 0);
  Rng rng(seed);
  for (size_t i = index.size(); i > 1; --i) {
    std::swap(index[i - 1], index[rng.NextBounded(i)]);
  }
  const auto cut = static_cast<size_t>(train_fraction * size());
  for (size_t i = 0; i < index.size(); ++i) {
    (i < cut ? train : test)->Add(row(index[i]), label(index[i]));
  }
}

}  // namespace robopt
