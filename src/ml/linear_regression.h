#ifndef ROBOPT_ML_LINEAR_REGRESSION_H_
#define ROBOPT_ML_LINEAR_REGRESSION_H_

#include <string>
#include <vector>

#include "ml/model.h"

namespace robopt {

/// Ridge regression fit by normal equations (Cholesky). The paper tried
/// linear regression, random forests and neural networks and found forests
/// the most robust; linear regression stays in the library both as a
/// baseline model and as the embodiment of the "fixed function form"
/// assumption the paper criticizes in tuned cost models.
class LinearRegression : public RuntimeModel {
 public:
  /// `l2` is the ridge penalty; `log_label` fits log1p(runtime) instead of
  /// runtime, which copes with the heavy-tailed label distribution.
  explicit LinearRegression(double l2 = 1e-3, bool log_label = true)
      : l2_(l2), log_label_(log_label) {}

  Status Train(const MlDataset& data) override;
  void PredictBatch(const float* x, size_t n, size_t dim,
                    float* out) const override;
  Status Save(const std::string& path) const override;
  Status Load(const std::string& path) override;
  std::string Name() const override { return "LinearRegression"; }

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  double l2_;
  bool log_label_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  // Feature standardization learned at training time.
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace robopt

#endif  // ROBOPT_ML_LINEAR_REGRESSION_H_
