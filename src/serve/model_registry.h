#ifndef ROBOPT_SERVE_MODEL_REGISTRY_H_
#define ROBOPT_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>

#include "core/cost_oracle.h"
#include "ml/random_forest.h"

namespace robopt {

class MetricsRegistry;

/// Per-version drift statistics: how far the model's predictions have been
/// from measured runtimes since it was published. The error is
/// |log1p(predicted) - log1p(actual)| — the space the forest fits in —
/// smoothed by an EWMA, so a model that has gone stale against the live
/// workload shows a rising curve (Kamali et al.'s "plan choice should track
/// model-error estimates").
struct DriftStats {
  double error_ewma = 0.0;
  size_t observations = 0;

  /// Mirrors this struct into robopt_drift_* gauges (Set — idempotent; the
  /// struct stays the source of truth).
  void ExportTo(MetricsRegistry* registry) const;
};

/// One immutable published model version: the forest, a batch oracle over
/// it, the holdout MAE it was validated with, and its live drift stats.
/// Snapshots are shared read-only between in-flight optimizations and the
/// registry; only the drift accumulator mutates (behind its own lock, off
/// the optimize hot path).
class ModelSnapshot {
 public:
  /// `quantized_validated` records that the forest's 8-bit quantized
  /// threshold tables passed the serving layer's holdout log1p-MAE bound —
  /// only then does the snapshot expose its quantized oracle to callers.
  ModelSnapshot(uint64_t version, std::shared_ptr<const RandomForest> forest,
                double holdout_mae, bool quantized_validated = false)
      : version_(version),
        forest_(std::move(forest)),
        oracle_(forest_.get()),
        quantized_oracle_(forest_.get(), /*quantized=*/true),
        quantized_validated_(quantized_validated),
        holdout_mae_(holdout_mae) {}

  uint64_t version() const { return version_; }
  const RandomForest& forest() const { return *forest_; }
  const std::shared_ptr<const RandomForest>& forest_ptr() const {
    return forest_;
  }
  const CostOracle& oracle() const { return oracle_; }
  /// The same forest through its 8-bit quantized inference path. The
  /// snapshot always owns one (the tables are built by ForestKernel::Build
  /// either way); whether it may *serve* is quantized_validated().
  const CostOracle& quantized_oracle() const { return quantized_oracle_; }
  bool quantized_validated() const { return quantized_validated_; }
  /// Holdout MAE (log-space) at validation time; NaN for models published
  /// out-of-band without validation (PublishExternal).
  double holdout_mae() const { return holdout_mae_; }

  DriftStats drift() const {
    std::lock_guard<std::mutex> lock(drift_mu_);
    return drift_;
  }

  /// Folds one |log1p(pred) - log1p(actual)| observation into the EWMA.
  void ObserveError(double abs_log_error, double alpha) const {
    std::lock_guard<std::mutex> lock(drift_mu_);
    drift_.error_ewma = drift_.observations == 0
                            ? abs_log_error
                            : (1.0 - alpha) * drift_.error_ewma +
                                  alpha * abs_log_error;
    ++drift_.observations;
  }

 private:
  const uint64_t version_;
  const std::shared_ptr<const RandomForest> forest_;
  const MlCostOracle oracle_;
  const MlCostOracle quantized_oracle_;
  const bool quantized_validated_;
  const double holdout_mae_;
  mutable std::mutex drift_mu_;
  mutable DriftStats drift_;
};

/// Versioned model registry with RCU-style hot swap. Readers pin the
/// current snapshot with a single atomic shared_ptr load (no lock on the
/// optimize path); Publish() atomically replaces it, and every in-flight
/// optimization keeps the version it pinned alive until the call finishes —
/// no reader ever observes a half-swapped model.
///
/// Implements OracleProvider, so a RoboptOptimizer constructed over the
/// registry re-pins the freshest model on every Optimize() call.
class ModelRegistry : public OracleProvider {
 public:
  /// Keeps the last `history` versions addressable via Get() after
  /// replacement (pinned readers keep *any* version alive regardless).
  explicit ModelRegistry(size_t history = 8) : history_(history) {}

  /// Publishes `forest` as the next version (1, 2, ...) and returns that
  /// version. Stamps the forest's ModelMeta::version before the swap.
  /// `holdout_mae` records the validation error the promotion decision used
  /// (NaN = published without validation). `quantized_validated` marks the
  /// snapshot's quantized tables as cleared to serve (the caller measured
  /// the quantized/exact holdout-error delta against its bound).
  uint64_t Publish(std::shared_ptr<RandomForest> forest, double holdout_mae,
                   bool quantized_validated = false);

  /// The current snapshot (nullptr before the first Publish). Lock-free.
  std::shared_ptr<const ModelSnapshot> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Version of the current snapshot (0 before the first Publish).
  uint64_t current_version() const {
    const auto snapshot = Current();
    return snapshot == nullptr ? 0 : snapshot->version();
  }

  /// Same value as current_version(), but a plain relaxed uint64 load —
  /// no shared_ptr refcount traffic (libstdc++ backs atomic<shared_ptr>
  /// with a spinlock pool). Sharded serving polls this on every request to
  /// decide whether to re-pin; acquire ordering is unnecessary because a
  /// changed value only triggers a Current() load, which synchronizes.
  uint64_t published_version() const {
    return published_version_.load(std::memory_order_relaxed);
  }

  /// Looks `version` up in the retained history (nullptr if evicted or
  /// never published).
  std::shared_ptr<const ModelSnapshot> Get(uint64_t version) const;

  /// Total versions ever published.
  size_t num_published() const;

  // OracleProvider: pins the current snapshot's oracle. The aliasing
  // shared_ptr keeps the whole snapshot (and its forest) alive for the
  // duration of the optimize call.
  PinnedOracle Acquire() const override;

 private:
  const size_t history_;
  std::atomic<std::shared_ptr<const ModelSnapshot>> current_{nullptr};
  std::atomic<uint64_t> published_version_{0};
  mutable std::mutex mu_;  ///< Guards next_version_ and history_list_.
  uint64_t next_version_ = 1;
  std::deque<std::shared_ptr<const ModelSnapshot>> history_list_;
};

}  // namespace robopt

#endif  // ROBOPT_SERVE_MODEL_REGISTRY_H_
