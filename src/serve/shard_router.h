#ifndef ROBOPT_SERVE_SHARD_ROUTER_H_
#define ROBOPT_SERVE_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "plan/fingerprint.h"

namespace robopt {

/// Router-side counters (cumulative since construction).
struct RouterStats {
  std::vector<uint64_t> routed;  ///< Requests routed, per shard.
  uint64_t rebalances = 0;       ///< DetectImbalance calls that produced a plan.
  uint64_t slots_moved = 0;      ///< Slot reassignments applied.
};

/// Lock-free request router of the sharded OptimizerService. The hash space
/// of (tenant, canonical plan fingerprint) is divided into `num_slots`
/// slots; each slot is owned by one shard through an atomic indirection
/// table, so
///
///   - routing is two relaxed loads and a multiply-mix hash — no locks, no
///     contention between concurrent callers;
///   - repeat queries (same tenant, same canonical plan) always land on the
///     same slot, hence on the shard whose PlanCache and oracle cache are
///     warm for them;
///   - rebalancing is a per-slot atomic store: requests racing with a move
///     simply route to the old or new owner, both of which serve correctly
///     (the worst case is a cold-cache miss).
///
/// The router also keeps per-slot load counters over a *window* (reset by
/// each DetectImbalance call). Sustained imbalance — the hottest shard
/// carrying more than `imbalance_factor` times the per-shard average for
/// `min_checks` consecutive windows — yields a MigrationPlan: a set of hot
/// slots to hand from the hottest to the coldest shard, sized to bring the
/// hot shard back to average. The serving layer then runs the two-phase
/// (count, payload) cache-entry exchange and applies MoveSlot per slot.
class ShardRouter {
 public:
  /// `num_slots` is rounded up to a power of two (default 256 — enough
  /// granularity to split load 64 ways per shard at 4 shards).
  explicit ShardRouter(int num_shards, size_t num_slots = 256);

  /// The deterministic shard-count convention, mirroring
  /// OptimizeOptions::num_threads: 0 = one shard per hardware core, 1 = the
  /// exact single-instance legacy service, n = n shards.
  static int ResolveShardCount(int num_shards);

  /// Multiply-mix of (tenant, fingerprint) — the routing key. Stable across
  /// plan construction order because the fingerprint is canonical.
  static uint64_t RouteHash(uint64_t tenant, const PlanFingerprint& plan);

  uint32_t SlotOf(uint64_t route_hash) const {
    return static_cast<uint32_t>(route_hash & slot_mask_);
  }
  uint32_t ShardOf(uint32_t slot) const {
    return owner_[slot].load(std::memory_order_relaxed);
  }

  /// Routes one request: returns the owning shard, fills `*slot`, and
  /// counts the hit into the per-slot window and per-shard totals.
  uint32_t Route(uint64_t tenant, const PlanFingerprint& plan,
                 uint32_t* slot);

  /// One migration decision: the source and destination shard and the slots
  /// to hand over (`slot_set` is the same selection as a num_slots-sized
  /// membership vector, ready for PlanCache::CountSlots/ExtractSlots).
  struct MigrationPlan {
    uint32_t from = 0;
    uint32_t to = 0;
    std::vector<uint32_t> slots;
    std::vector<bool> slot_set;
  };

  /// Closes the current load window and decides whether to migrate (see
  /// class comment). Single consumer: callers must serialize (the serving
  /// layer runs this from one maintenance context). Returns true and fills
  /// `*plan` when sustained imbalance warrants a move; the caller is
  /// expected to migrate cache entries and then MoveSlot() each slot.
  bool DetectImbalance(double imbalance_factor, int min_checks,
                       MigrationPlan* plan);

  /// Reassigns `slot` to shard `to` (atomic; racing requests route to the
  /// old or new owner, never to garbage).
  void MoveSlot(uint32_t slot, uint32_t to);

  int num_shards() const { return num_shards_; }
  size_t num_slots() const { return owner_.size(); }
  RouterStats stats() const;

 private:
  int num_shards_;
  uint64_t slot_mask_;
  /// slot -> owning shard. unique_ptr-free flat storage; atomics are
  /// neither copyable nor movable, so the vector is sized once.
  std::vector<std::atomic<uint32_t>> owner_;
  /// Per-slot window counters (reset by DetectImbalance).
  std::vector<std::atomic<uint64_t>> slot_window_;
  /// Per-shard cumulative routed counters.
  std::vector<std::atomic<uint64_t>> shard_routed_;
  std::atomic<uint64_t> rebalances_{0};
  std::atomic<uint64_t> slots_moved_{0};
  /// Consecutive imbalanced windows (only touched by the DetectImbalance
  /// caller).
  int imbalance_streak_ = 0;
};

}  // namespace robopt

#endif  // ROBOPT_SERVE_SHARD_ROUTER_H_
