#include "serve/model_registry.h"

#include "common/check.h"
#include "obs/metrics.h"

namespace robopt {

void DriftStats::ExportTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->Set("robopt_drift_error_ewma", error_ewma);
  registry->Set("robopt_drift_observations",
                static_cast<double>(observations));
}

uint64_t ModelRegistry::Publish(std::shared_ptr<RandomForest> forest,
                                double holdout_mae,
                                bool quantized_validated) {
  ROBOPT_CHECK(forest != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t version = next_version_++;
  // Stamp provenance while we still hold the only mutable reference; after
  // the swap the forest is shared read-only with concurrent optimizers.
  ModelMeta meta = forest->meta();
  meta.version = version;
  forest->set_meta(meta);
  auto snapshot = std::make_shared<const ModelSnapshot>(
      version, std::shared_ptr<const RandomForest>(std::move(forest)),
      holdout_mae, quantized_validated);
  history_list_.push_back(snapshot);
  while (history_list_.size() > history_) history_list_.pop_front();
  // The swap itself: one atomic store. In-flight readers holding the old
  // snapshot keep it alive; new readers see the new version.
  current_.store(std::move(snapshot), std::memory_order_release);
  // After the snapshot store, so a reader that sees the new version and
  // re-pins is guaranteed to pin this version or a later one.
  published_version_.store(version, std::memory_order_release);
  return version;
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::Get(
    uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& snapshot : history_list_) {
    if (snapshot->version() == version) return snapshot;
  }
  return nullptr;
}

size_t ModelRegistry::num_published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_version_ - 1;
}

PinnedOracle ModelRegistry::Acquire() const {
  PinnedOracle pinned;
  const auto snapshot = Current();
  if (snapshot == nullptr) return pinned;
  // Aliasing constructor: the returned pointer addresses the snapshot's
  // oracle but owns the snapshot, so the pinned model cannot be destroyed
  // under an in-flight optimization even if the registry moves on.
  pinned.oracle =
      std::shared_ptr<const CostOracle>(snapshot, &snapshot->oracle());
  if (snapshot->quantized_validated()) {
    pinned.quantized_oracle = std::shared_ptr<const CostOracle>(
        snapshot, &snapshot->quantized_oracle());
  }
  pinned.version = snapshot->version();
  return pinned;
}

}  // namespace robopt
