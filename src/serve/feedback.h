#ifndef ROBOPT_SERVE_FEEDBACK_H_
#define ROBOPT_SERVE_FEEDBACK_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace robopt {

class MetricsRegistry;

/// One executed-plan observation flowing from an Executor into the retrain
/// loop: the plan's encoded feature vector, what the serving model
/// predicted for it, and what the (virtual) clock actually measured.
struct FeedbackEvent {
  std::vector<float> features;  ///< Encoded plan vector (schema width).
  float predicted_s = 0.0f;     ///< Serving model's prediction at run time.
  double actual_s = 0.0;        ///< Measured runtime in seconds.
  uint64_t model_version = 0;   ///< Version that made the prediction.
};

struct FeedbackStats {
  size_t offered = 0;   ///< Offer() calls.
  size_t accepted = 0;  ///< Events enqueued.
  size_t dropped = 0;   ///< *Oldest* events evicted because the queue was full.
  size_t rejected_nonfinite = 0;  ///< Events refused for a non-finite runtime.
  size_t drained = 0;   ///< Events handed to the consumer.
  size_t failures = 0;  ///< Execution failures observed (RecordFailure()).

  /// Mirrors this struct into robopt_feedback_* gauges. The struct (already
  /// cumulative over the collector's lifetime) stays the source of truth;
  /// gauges are Set, so re-exporting is idempotent.
  void ExportTo(MetricsRegistry* registry) const;
};

/// Bounded multi-producer single-consumer queue between executors and the
/// retrain worker. Producers never block: when the queue is at capacity the
/// *oldest* queued event is evicted to make room (ring semantics) — the
/// newest observation is always kept, since it reflects the current
/// workload best, and a stalled trainer must never backpressure query
/// execution. Evictions are counted in stats().dropped.
class FeedbackCollector {
 public:
  explicit FeedbackCollector(size_t capacity) : capacity_(capacity) {}

  /// Enqueues one event. When the queue is at capacity the oldest event is
  /// evicted (counted in dropped) and the new one accepted; returns true.
  /// Returns false only for an invalid event: a non-finite actual_s (an OOM
  /// reports +inf virtual seconds) must never reach training, so it is
  /// refused and counted in rejected_nonfinite.
  bool Offer(FeedbackEvent event);

  /// Counts one failed execution (the observer's OnExecutionFailure hook).
  /// Failed runs produce no runtime label, so no event is enqueued — but
  /// the count lets the serving layer report fault pressure.
  void RecordFailure();

  /// Moves out all queued events in arrival order (the consumer side).
  std::vector<FeedbackEvent> Drain();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  FeedbackStats stats() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;  ///< Guards queue_ and stats_.
  std::deque<FeedbackEvent> queue_;
  FeedbackStats stats_;
};

}  // namespace robopt

#endif  // ROBOPT_SERVE_FEEDBACK_H_
