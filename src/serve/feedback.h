#ifndef ROBOPT_SERVE_FEEDBACK_H_
#define ROBOPT_SERVE_FEEDBACK_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace robopt {

class MetricsRegistry;

/// One executed-plan observation flowing from an Executor into the retrain
/// loop: the plan's encoded feature vector, what the serving model
/// predicted for it, and what the (virtual) clock actually measured.
struct FeedbackEvent {
  std::vector<float> features;  ///< Encoded plan vector (schema width).
  float predicted_s = 0.0f;     ///< Serving model's prediction at run time.
  double actual_s = 0.0;        ///< Measured runtime in seconds.
  uint64_t model_version = 0;   ///< Version that made the prediction.
};

struct FeedbackStats {
  size_t offered = 0;   ///< Offer() calls.
  size_t accepted = 0;  ///< Events enqueued.
  size_t dropped = 0;   ///< *Oldest* events evicted because the queue was full.
  size_t rejected_nonfinite = 0;  ///< Events refused for a non-finite runtime.
  size_t drained = 0;   ///< Events handed to the consumer.
  size_t failures = 0;  ///< Execution failures observed (RecordFailure()).
  /// Per-stripe slice of `dropped` (stripe i of a collector built with N
  /// stripes; a single vector of size 1 for the unstriped collector). Under
  /// overload this tells apart *which* producers' feedback is being lost —
  /// the sharded serving layer sizes stripes to its shard count, so this
  /// reads as per-shard feedback loss next to the per-shard shed counters.
  std::vector<size_t> stripe_dropped;

  /// Mirrors this struct into robopt_feedback_* gauges — aggregates plus
  /// one robopt_feedback_stripe_dropped{stripe="i"} gauge per stripe. The
  /// struct (already cumulative over the collector's lifetime) stays the
  /// source of truth; gauges are Set, so re-exporting is idempotent.
  void ExportTo(MetricsRegistry* registry) const;
};

/// Bounded multi-producer single-consumer queue between executors and the
/// retrain worker. Producers never block: when the queue is at capacity the
/// *oldest* queued event is evicted to make room (ring semantics) — the
/// newest observation is always kept, since it reflects the current
/// workload best, and a stalled trainer must never backpressure query
/// execution. Evictions are counted in stats().dropped.
///
/// The queue is striped: `stripes` independent (deque, mutex, counters)
/// lanes, each holding capacity/stripes events, with producers hashed to a
/// lane by thread id. Concurrent executors therefore contend only 1/Nth of
/// the time, and drop counters are attributable per stripe. Drain() merges
/// all lanes in stripe order — arrival order is preserved within a stripe
/// (which is all a producer thread can observe; cross-thread arrival order
/// was never defined, with one mutex or several).
class FeedbackCollector {
 public:
  explicit FeedbackCollector(size_t capacity, size_t stripes = 1);

  /// Enqueues one event. When the queue is at capacity the oldest event of
  /// the producer's stripe is evicted (counted in dropped) and the new one
  /// accepted; returns true. Returns false only for an invalid event: a
  /// non-finite actual_s (an OOM reports +inf virtual seconds) must never
  /// reach training, so it is refused and counted in rejected_nonfinite.
  bool Offer(FeedbackEvent event);

  /// Counts one failed execution (the observer's OnExecutionFailure hook).
  /// Failed runs produce no runtime label, so no event is enqueued — but
  /// the count lets the serving layer report fault pressure.
  void RecordFailure();

  /// Moves out all queued events, stripe by stripe in arrival order (the
  /// consumer side).
  std::vector<FeedbackEvent> Drain();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t stripes() const { return lanes_.size(); }
  FeedbackStats stats() const;

 private:
  struct Lane {
    mutable std::mutex mu;  ///< Guards queue and the counters below.
    std::deque<FeedbackEvent> queue;
    size_t offered = 0;
    size_t accepted = 0;
    size_t dropped = 0;
    size_t rejected_nonfinite = 0;
  };

  Lane& LaneForThisThread();

  const size_t capacity_;       ///< Total across stripes.
  const size_t lane_capacity_;  ///< Per stripe.
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<size_t> drained_{0};
  std::atomic<size_t> failures_{0};
};

}  // namespace robopt

#endif  // ROBOPT_SERVE_FEEDBACK_H_
