#include "serve/feedback.h"

namespace robopt {

bool FeedbackCollector::Offer(FeedbackEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.offered;
  if (queue_.size() >= capacity_) {
    ++stats_.dropped;
    return false;
  }
  queue_.push_back(std::move(event));
  ++stats_.accepted;
  return true;
}

std::vector<FeedbackEvent> FeedbackCollector::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FeedbackEvent> out(std::make_move_iterator(queue_.begin()),
                                 std::make_move_iterator(queue_.end()));
  queue_.clear();
  stats_.drained += out.size();
  return out;
}

size_t FeedbackCollector::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

FeedbackStats FeedbackCollector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace robopt
