#include "serve/feedback.h"

#include <cmath>
#include <functional>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace robopt {

void FeedbackStats::ExportTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->Set("robopt_feedback_offered", static_cast<double>(offered));
  registry->Set("robopt_feedback_accepted", static_cast<double>(accepted));
  registry->Set("robopt_feedback_dropped", static_cast<double>(dropped));
  registry->Set("robopt_feedback_rejected_nonfinite",
                static_cast<double>(rejected_nonfinite));
  registry->Set("robopt_feedback_drained", static_cast<double>(drained));
  registry->Set("robopt_feedback_failures", static_cast<double>(failures));
  for (size_t i = 0; i < stripe_dropped.size(); ++i) {
    registry->Set(
        "robopt_feedback_stripe_dropped{stripe=\"" + std::to_string(i) + "\"}",
        static_cast<double>(stripe_dropped[i]));
  }
}

FeedbackCollector::FeedbackCollector(size_t capacity, size_t stripes)
    : capacity_(capacity),
      lane_capacity_(stripes <= 1
                         ? capacity
                         : (capacity + stripes - 1) / stripes) {
  if (stripes == 0) stripes = 1;
  lanes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
}

FeedbackCollector::Lane& FeedbackCollector::LaneForThisThread() {
  const size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return *lanes_[h % lanes_.size()];
}

bool FeedbackCollector::Offer(FeedbackEvent event) {
  Lane& lane = LaneForThisThread();
  std::lock_guard<std::mutex> lock(lane.mu);
  ++lane.offered;
  if (!std::isfinite(event.actual_s)) {
    // An OOM is reported as +inf virtual seconds; a NaN is a measurement
    // bug. Either would poison the regression target if trained on.
    ++lane.rejected_nonfinite;
    return false;
  }
  if (capacity_ == 0) {
    ++lane.dropped;
    return false;
  }
  while (lane.queue.size() >= lane_capacity_) {
    // Ring semantics: evict the oldest observation, keep the newest — it
    // reflects the current workload (and current model) best.
    lane.queue.pop_front();
    ++lane.dropped;
  }
  lane.queue.push_back(std::move(event));
  ++lane.accepted;
  return true;
}

void FeedbackCollector::RecordFailure() {
  failures_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<FeedbackEvent> FeedbackCollector::Drain() {
  std::vector<FeedbackEvent> out;
  for (auto& lane : lanes_) {
    std::lock_guard<std::mutex> lock(lane->mu);
    out.insert(out.end(), std::make_move_iterator(lane->queue.begin()),
               std::make_move_iterator(lane->queue.end()));
    lane->queue.clear();
  }
  drained_.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

size_t FeedbackCollector::size() const {
  size_t total = 0;
  for (const auto& lane : lanes_) {
    std::lock_guard<std::mutex> lock(lane->mu);
    total += lane->queue.size();
  }
  return total;
}

FeedbackStats FeedbackCollector::stats() const {
  FeedbackStats out;
  out.stripe_dropped.reserve(lanes_.size());
  for (const auto& lane : lanes_) {
    std::lock_guard<std::mutex> lock(lane->mu);
    out.offered += lane->offered;
    out.accepted += lane->accepted;
    out.dropped += lane->dropped;
    out.rejected_nonfinite += lane->rejected_nonfinite;
    out.stripe_dropped.push_back(lane->dropped);
  }
  out.drained = drained_.load(std::memory_order_relaxed);
  out.failures = failures_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace robopt
