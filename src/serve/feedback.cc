#include "serve/feedback.h"

#include <cmath>

#include "obs/metrics.h"

namespace robopt {

void FeedbackStats::ExportTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->Set("robopt_feedback_offered", static_cast<double>(offered));
  registry->Set("robopt_feedback_accepted", static_cast<double>(accepted));
  registry->Set("robopt_feedback_dropped", static_cast<double>(dropped));
  registry->Set("robopt_feedback_rejected_nonfinite",
                static_cast<double>(rejected_nonfinite));
  registry->Set("robopt_feedback_drained", static_cast<double>(drained));
  registry->Set("robopt_feedback_failures", static_cast<double>(failures));
}

bool FeedbackCollector::Offer(FeedbackEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.offered;
  if (!std::isfinite(event.actual_s)) {
    // An OOM is reported as +inf virtual seconds; a NaN is a measurement
    // bug. Either would poison the regression target if trained on.
    ++stats_.rejected_nonfinite;
    return false;
  }
  if (capacity_ == 0) {
    ++stats_.dropped;
    return false;
  }
  while (queue_.size() >= capacity_) {
    // Ring semantics: evict the oldest observation, keep the newest — it
    // reflects the current workload (and current model) best.
    queue_.pop_front();
    ++stats_.dropped;
  }
  queue_.push_back(std::move(event));
  ++stats_.accepted;
  return true;
}

void FeedbackCollector::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.failures;
}

std::vector<FeedbackEvent> FeedbackCollector::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FeedbackEvent> out(std::make_move_iterator(queue_.begin()),
                                 std::make_move_iterator(queue_.end()));
  queue_.clear();
  stats_.drained += out.size();
  return out;
}

size_t FeedbackCollector::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

FeedbackStats FeedbackCollector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace robopt
