#include "serve/optimizer_service.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/ticket_queue.h"
#include "ml/forest_kernel.h"
#include "ml/simd_dispatch.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "plan/fingerprint.h"

namespace robopt {
namespace {

/// MAE in log1p space — the space the forest fits in, so validation and
/// training optimize the same quantity. An empty set has no error to
/// measure: NaN (the "unvalidated" marker PublishExternal also records),
/// never 0.0 — a zero would make any comparison against it vacuously pass.
double LogSpaceMae(const RuntimeModel& model, const MlDataset& data,
                   bool quantized = false) {
  if (data.size() == 0) return std::numeric_limits<double>::quiet_NaN();
  std::vector<float> pred(data.size());
  if (quantized) {
    model.PredictBatchQuantized(data.features().data(), data.size(),
                                data.dim(), pred.data());
  } else {
    model.PredictBatch(data.features().data(), data.size(), data.dim(),
                       pred.data());
  }
  double sum = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    const double p = std::log1p(std::max(0.0, static_cast<double>(pred[i])));
    const double a =
        std::log1p(std::max(0.0, static_cast<double>(data.label(i))));
    sum += std::fabs(p - a);
  }
  return sum / static_cast<double>(data.size());
}

/// The quantized-serving gate: measures how much holdout log1p-MAE rises
/// when the forest estimates through its 8-bit threshold tables instead of
/// the exact ones, and passes only a measured delta within `max_delta`. An
/// empty holdout cannot measure anything — the gate fails closed (exact
/// serving), mirroring the promote_unvalidated philosophy: a bound that was
/// never checked must never be treated as passed. `exact_mae` is the
/// already-computed exact holdout MAE of the same forest.
bool QuantizedGatePasses(const RandomForest& forest, const MlDataset& holdout,
                         double exact_mae, double max_delta, double* delta) {
  *delta = std::numeric_limits<double>::quiet_NaN();
  if (holdout.size() == 0 || !forest.kernel().has_quantized()) return false;
  const double quantized_mae =
      LogSpaceMae(forest, holdout, /*quantized=*/true);
  *delta = quantized_mae - exact_mae;
  return *delta <= max_delta;
}

double AbsLogError(float predicted_s, double actual_s) {
  const double p = std::log1p(std::max(0.0, static_cast<double>(predicted_s)));
  const double a = std::log1p(std::max(0.0, actual_s));
  return std::fabs(p - a);
}

/// Canonical correspondence between a plan instance's insertion-order ids
/// and the order-independent fingerprint: per-operator Merkle hashes paired
/// with ids, sorted. Cached assignments transfer through this order, never
/// by raw id — fingerprint-equal plans may number the same operator
/// differently (ties are structurally interchangeable operators, so the
/// sorted pairing is valid for them too).
void Canonicalize(const std::vector<uint64_t>& node_hashes,
                  std::vector<std::pair<uint64_t, OperatorId>>* canonical,
                  std::vector<uint64_t>* sorted_hashes) {
  canonical->reserve(node_hashes.size());
  for (size_t id = 0; id < node_hashes.size(); ++id) {
    canonical->emplace_back(node_hashes[id], static_cast<OperatorId>(id));
  }
  std::sort(canonical->begin(), canonical->end());
  sorted_hashes->reserve(canonical->size());
  for (const auto& pair : *canonical) sorted_hashes->push_back(pair.first);
}

/// Replays a cache hit onto the caller's plan. Lookup verified the hash
/// sequences match positionally, so the i-th cached alt belongs to the
/// operator behind canonical[i]. The alt range could still disagree on a
/// same-hash collision across operator kinds — checked per operator,
/// returning false for a full re-optimize rather than tripping the
/// ROBOPT_CHECK in ExecutionPlan::Assign.
bool TransferCached(const PlanCache::Entry& cached,
                    const std::vector<std::pair<uint64_t, OperatorId>>& canonical,
                    const LogicalPlan& plan, const PlatformRegistry* registry,
                    std::chrono::steady_clock::time_point start,
                    OptimizerService::Result* result) {
  result->cache_hit = true;
  result->optimize.plan = ExecutionPlan(&plan, registry);
  bool transferable = cached.assignment.size() == canonical.size();
  for (size_t i = 0; i < canonical.size() && transferable; ++i) {
    const OperatorId id = canonical[i].second;
    const int alt = cached.assignment[i].second;
    if (alt < 0) continue;
    const auto& alts = registry->AlternativesFor(plan.op(id).kind);
    if (alt >= static_cast<int>(alts.size())) {
      transferable = false;
    } else {
      result->optimize.plan.Assign(id, alt);
    }
  }
  if (!transferable) return false;
  result->optimize.predicted_runtime_s = cached.predicted_runtime_s;
  result->optimize.chosen_platform = cached.chosen_platform;
  result->optimize.model_version = cached.model_version;
  result->optimize.latency_ms = std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - start)
                                    .count();
  return true;
}

PlanCache::Entry MakeCacheEntry(
    const OptimizerService::Result& result,
    const std::vector<std::pair<uint64_t, OperatorId>>& canonical,
    uint32_t slot) {
  PlanCache::Entry entry;
  entry.assignment.reserve(canonical.size());
  for (const auto& pair : canonical) {
    entry.assignment.emplace_back(
        pair.first,
        static_cast<int16_t>(result.optimize.plan.alt_index(pair.second)));
  }
  // Canonical form sorts ties by alt as well, so equal-hash operators
  // store and replay their alts in one deterministic order.
  std::sort(entry.assignment.begin(), entry.assignment.end());
  entry.predicted_runtime_s = result.optimize.predicted_runtime_s;
  entry.chosen_platform = result.optimize.chosen_platform;
  entry.model_version = result.optimize.model_version;
  for (PlatformId platform : result.optimize.plan.PlatformsUsed()) {
    entry.platform_mask |= 1ull << platform;
  }
  entry.slot = slot;
  return entry;
}

/// Maps the cache layer's self-contained miss vocabulary onto the decision
/// record's (which adds hit/disabled/untransferable — states the cache
/// itself never sees).
DecisionCacheResult MapCacheResult(bool enabled, bool hit,
                                   bool untransferable,
                                   PlanCacheMissCause cause) {
  if (!enabled) return DecisionCacheResult::kDisabled;
  if (hit) return DecisionCacheResult::kHit;
  if (untransferable) return DecisionCacheResult::kMissUntransferable;
  switch (cause) {
    case PlanCacheMissCause::kStaleVersion:
      return DecisionCacheResult::kMissStaleVersion;
    case PlanCacheMissCause::kHashMismatch:
      return DecisionCacheResult::kMissHashMismatch;
    case PlanCacheMissCause::kCold:
    case PlanCacheMissCause::kNone:
      return DecisionCacheResult::kMissCold;
  }
  return DecisionCacheResult::kMissCold;
}

}  // namespace

/// One serving shard: a bounded FIFO admission queue whose admitted caller
/// *becomes* the shard's executor (no cross-thread handoff), a PlanCache
/// slice, and a pinned model handle with an optional long-lived oracle memo
/// in front of it. Everything under "shard-local" is touched only while
/// holding the queue's serving turn — the ticket chain's release/acquire
/// ordering makes plain state safe without further locks.
struct OptimizerService::Shard {
  Shard(const PlatformRegistry* registry, const FeatureSchema* schema,
        uint64_t queue_capacity, size_t cache_capacity)
      : queue(queue_capacity),
        cache(cache_capacity),
        optimizer(registry, schema, &provider) {}

  /// Hands the shard's pinned oracle to its optimizer. Acquire() is called
  /// once per optimize call, always inside the serving turn, so the plain
  /// `pinned` member needs no synchronization.
  struct PinnedProvider final : public OracleProvider {
    PinnedOracle pinned;
    PinnedOracle Acquire() const override { return pinned; }
  };

  TicketQueue queue;
  PlanCache cache;
  PinnedProvider provider;
  RoboptOptimizer optimizer;

  // --- Shard-local (serving-turn only) ---
  std::shared_ptr<const ModelSnapshot> snapshot;  ///< Pinned model.
  uint64_t pinned_version = 0;
  /// Long-lived memo in front of the pinned oracle (persists across calls
  /// on this shard; rebuilt on re-pin). Null when the budget is 0.
  std::unique_ptr<CachingCostOracle> memo_exact;
  std::unique_ptr<CachingCostOracle> memo_quantized;
  /// Breaker fan-out state: last reconciled trip epoch and per-platform
  /// trip counts (mirrors the legacy path's last_trips_, but per shard).
  uint64_t seen_trip_epoch = 0;
  std::array<uint64_t, kMaxPlatforms> last_trips{};

  // --- Read concurrently by producers at admission ---
  std::atomic<double> ewma_service_s{0.0};
  std::atomic<uint64_t> processed{0};
  std::atomic<uint64_t> shed_queue_full{0};
  std::atomic<uint64_t> shed_deadline{0};
  std::atomic<uint64_t> shed_slo{0};
};

void RecoveryStats::ExportTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->Set("robopt_recovery_failures_observed",
                static_cast<double>(failures_observed));
  registry->Set("robopt_recovery_breaker_trips",
                static_cast<double>(breaker_trips));
  registry->Set("robopt_recovery_breaker_recoveries",
                static_cast<double>(breaker_recoveries));
  registry->Set("robopt_recovery_masked_optimizes",
                static_cast<double>(masked_optimizes));
  registry->Set("robopt_recovery_plans_invalidated_on_trip",
                static_cast<double>(plans_invalidated_on_trip));
  registry->Set("robopt_recovery_open_platform_mask",
                static_cast<double>(open_platform_mask));
}

void ServeStats::ExportTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->Set("robopt_serve_current_version",
                static_cast<double>(current_version));
  registry->Set("robopt_serve_versions_published",
                static_cast<double>(versions_published));
  registry->Set("robopt_serve_retrains", static_cast<double>(retrains));
  registry->Set("robopt_serve_promotions", static_cast<double>(promotions));
  registry->Set("robopt_serve_rejections", static_cast<double>(rejections));
  registry->Set("robopt_serve_experience_rows",
                static_cast<double>(experience_rows));
  registry->Set("robopt_serve_holdout_rows",
                static_cast<double>(holdout_rows));
  // Sharded-serving aggregates, exported unconditionally (all zero except
  // the count on the legacy path) so the metric table is stable across
  // shard configurations.
  registry->Set("robopt_shard_count", static_cast<double>(num_shards));
  registry->Set("robopt_shard_processed_total",
                static_cast<double>(shard_processed));
  registry->Set("robopt_shard_shed_queue_full_total",
                static_cast<double>(shard_shed_queue_full));
  registry->Set("robopt_shard_shed_deadline_total",
                static_cast<double>(shard_shed_deadline));
  registry->Set("robopt_shard_shed_slo_total",
                static_cast<double>(shard_shed_slo));
  registry->Set("robopt_shard_queue_depth",
                static_cast<double>(shard_queue_depth));
  registry->Set("robopt_router_rebalances_total",
                static_cast<double>(router_rebalances));
  registry->Set("robopt_router_slots_moved_total",
                static_cast<double>(router_slots_moved));
  // Per-shard breakdown (sharded mode only; label style matches the
  // breaker and feedback-stripe gauges).
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardStats& shard = shards[i];
    const std::string label = "{shard=\"" + std::to_string(i) + "\"}";
    registry->Set("robopt_shard_processed" + label,
                  static_cast<double>(shard.processed));
    registry->Set("robopt_shard_shed_queue_full" + label,
                  static_cast<double>(shard.shed_queue_full));
    registry->Set("robopt_shard_shed_deadline" + label,
                  static_cast<double>(shard.shed_deadline));
    registry->Set("robopt_shard_shed_slo" + label,
                  static_cast<double>(shard.shed_slo));
    registry->Set("robopt_shard_queue_depth" + label,
                  static_cast<double>(shard.queue_depth));
    registry->Set("robopt_shard_routed" + label,
                  static_cast<double>(shard.routed));
    registry->Set("robopt_shard_cache_hits" + label,
                  static_cast<double>(shard.plan_cache.hits));
  }
  feedback.ExportTo(registry);
  plan_cache.ExportTo(registry);
  current_drift.ExportTo(registry);
  recovery.ExportTo(registry);
}

StatusOr<std::unique_ptr<OptimizerService>> OptimizerService::Create(
    const PlatformRegistry* registry, const FeatureSchema* schema,
    MlDataset base, std::shared_ptr<RandomForest> initial,
    ServeOptions options) {
  if (registry == nullptr || schema == nullptr) {
    return Status::InvalidArgument("registry and schema are required");
  }
  if (base.dim() != schema->width()) {
    return Status::InvalidArgument(
        "base dataset width does not match the feature schema");
  }
  std::unique_ptr<OptimizerService> service(
      new OptimizerService(registry, schema, std::move(options)));
  if (base.size() > 0 && service->options_.holdout_fraction > 0.0) {
    base.Split(1.0 - service->options_.holdout_fraction,
               service->options_.holdout_seed, &service->base_train_,
               &service->holdout_);
  } else {
    service->base_train_ = std::move(base);
  }
  if (initial == nullptr) {
    if (service->base_train_.size() == 0) {
      return Status::InvalidArgument(
          "no initial model was given and the base dataset is empty");
    }
    auto forest = std::make_shared<RandomForest>(service->options_.forest);
    ROBOPT_RETURN_IF_ERROR(forest->Train(service->base_train_));
    initial = std::move(forest);
  }
  const double mae = LogSpaceMae(*initial, service->holdout_);
  bool quantized_ok = false;
  if (service->options_.quantized_inference) {
    double delta = 0.0;
    quantized_ok = QuantizedGatePasses(
        *initial, service->holdout_, mae,
        service->options_.quantized_max_mae_delta, &delta);
  }
  service->models_.Publish(std::move(initial), mae, quantized_ok);
  if (service->options_.background_retrain) {
    service->worker_ = std::thread([s = service.get()] { s->WorkerLoop(); });
  }
  return service;
}

OptimizerService::OptimizerService(const PlatformRegistry* registry,
                                   const FeatureSchema* schema,
                                   ServeOptions options)
    : registry_(registry),
      schema_(schema),
      options_(std::move(options)),
      models_(options_.model_history),
      optimizer_(registry, schema,
                 static_cast<const OracleProvider*>(&models_)),
      // Feedback stripes match the shard count, so per-stripe drop counters
      // read as per-shard feedback loss next to the shed counters.
      collector_(options_.feedback_capacity,
                 static_cast<size_t>(
                     ShardRouter::ResolveShardCount(options_.num_shards))),
      experience_(schema),
      plan_cache_(options_.plan_cache_capacity),
      base_train_(schema->width()),
      holdout_(schema->width()),
      last_train_(std::chrono::steady_clock::now()),
      service_epoch_(std::chrono::steady_clock::now()),
      health_(options_.breaker),
      tracer_(options_.trace_capacity) {
  if (options_.diagnostics.enabled) {
    decisions_ =
        std::make_unique<DecisionRing>(options_.diagnostics.ring_capacity);
  }
  if (options_.slo.enabled) {
    WindowedSketch::Options sketch;
    sketch.alpha = options_.slo.sketch_alpha;
    sketch.window_s = options_.slo.sketch_window_s;
    sketch.windows = options_.slo.sketch_windows;
    sketch.exemplars_per_window = options_.slo.exemplars_per_window;
    latency_sketch_ = std::make_unique<WindowedSketch>(sketch);
    slo_ = std::make_unique<SloEngine>(options_.slo.objectives,
                                       latency_sketch_.get());
  }
  num_shards_resolved_ = ShardRouter::ResolveShardCount(options_.num_shards);
  if (num_shards_resolved_ > 1) {
    router_ = std::make_unique<ShardRouter>(num_shards_resolved_,
                                            options_.router_slots);
    // The configured capacity is a service-wide budget, split evenly; each
    // shard keeps at least one entry so warm routing still pays off at
    // tiny capacities. 0 stays 0 (cache disabled everywhere).
    const size_t per_shard_cache =
        options_.plan_cache_capacity == 0
            ? 0
            : std::max<size_t>(1, options_.plan_cache_capacity /
                                      static_cast<size_t>(
                                          num_shards_resolved_));
    const uint64_t queue_capacity =
        options_.shard_queue_capacity == 0 ? 1
                                           : options_.shard_queue_capacity;
    shards_.reserve(static_cast<size_t>(num_shards_resolved_));
    for (int i = 0; i < num_shards_resolved_; ++i) {
      shards_.push_back(std::make_unique<Shard>(registry, schema,
                                                queue_capacity,
                                                per_shard_cache));
    }
  }
}

OptimizerService::~OptimizerService() {
  {
    std::lock_guard<std::mutex> lock(worker_mu_);
    stop_ = true;
  }
  worker_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

StatusOr<OptimizerService::Result> OptimizerService::Optimize(
    const LogicalPlan& plan, const Cardinalities* cards) {
  return Optimize(plan, cards, options_.optimize);
}

StatusOr<OptimizerService::Result> OptimizerService::Optimize(
    const LogicalPlan& plan, const Cardinalities* cards,
    const OptimizeOptions& options) {
  return Optimize(plan, cards, options, RequestContext{});
}

StatusOr<OptimizerService::Result> OptimizerService::Optimize(
    const LogicalPlan& plan, const Cardinalities* cards,
    const OptimizeOptions& options, const RequestContext& ctx) {
  RequestObserver* observer = options_.request_observer;
  const bool diag_on = decisions_ != nullptr;
  const bool slo_on = slo_ != nullptr;
  if (observer == nullptr && !diag_on && !slo_on) {
    if (shards_.empty()) return OptimizeLegacy(plan, cards, options);
    return OptimizeSharded(plan, cards, options, ctx);
  }

  // Diagnostics choke point: every overload funnels here, so one stopwatch
  // measures true end-to-end service latency (queue wait included) and one
  // scratch collects the inner paths' decision breadcrumbs.
  const auto start = std::chrono::steady_clock::now();
  // Diagnostics ask for runner-up plans; the selection reuses the final
  // cost batch and is excluded from the cache key, so served plans stay
  // bit-identical and cache entries stay shared with diagnostics off.
  OptimizeOptions effective = options;
  if (diag_on) {
    effective.top_k_runners =
        std::max(effective.top_k_runners,
                 std::min(options_.diagnostics.top_k_runners,
                          kDecisionRunners));
  }
  PlanFingerprint fp;
  DecisionScratch scratch;
  auto result =
      shards_.empty()
          ? OptimizeLegacy(plan, cards, effective, &fp, &scratch)
          : OptimizeSharded(plan, cards, effective, ctx, &fp, &scratch);
  const double latency_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();

  if (observer != nullptr) {
    ServedRequest served;
    served.tenant = ctx.tenant;
    served.plan = &plan;
    served.cards = cards;
    served.options_hash = PlanCache::HashOptions(options);
    served.fp_lo = fp.lo;
    served.fp_hi = fp.hi;
    if (result.ok()) {
      served.cache_hit = result->cache_hit;
      served.predicted_runtime_s = result->optimize.predicted_runtime_s;
      served.model_version = result->optimize.model_version;
      served.chosen_platform =
          static_cast<uint8_t>(result->optimize.chosen_platform);
      served.optimized = &result->optimize.plan;
    } else {
      served.status = result.status().code();
    }
    observer->OnRequest(served);
  }

  if (slo_on) {
    const double now_s = SloNow();
    if (result.ok()) {
      // The chaos/test hook pads only what the sketch *observes* — the
      // served request itself is untouched.
      const double recorded_us =
          latency_us +
          slo_inject_latency_us_.load(std::memory_order_relaxed);
      SketchExemplar exemplar;
      exemplar.value = recorded_us;
      exemplar.fp_lo = fp.lo;
      exemplar.fp_hi = fp.hi;
      latency_sketch_->Record(now_s, recorded_us, &exemplar);
    } else if (scratch.shed != ShedReason::kNone) {
      // Sheds carry no latency; they land as bad events, which only an
      // objective with count_sheds_as_bad opts into (counting the sheds
      // the SLO reaction itself causes would latch critical forever).
      latency_sketch_->RecordBad(now_s);
    }
  }

  if (diag_on) {
    if (fp.lo == 0 && fp.hi == 0) {
      // Legacy path with the cache off never fingerprints; diagnostics
      // want the identity anyway.
      fp = FingerprintPlan(plan);
    }
    DecisionRecord record;
    record.wall_us = std::chrono::duration<double, std::micro>(
                         start - service_epoch_)
                         .count();
    record.tenant = ctx.tenant;
    record.fp_lo = fp.lo;
    record.fp_hi = fp.hi;
    record.options_hash = PlanCache::HashOptions(options);
    record.shard = scratch.shard;
    record.shed = scratch.shed;
    record.slo_health = static_cast<uint8_t>(slo_health());
    record.open_breaker_mask = scratch.open_mask;
    record.excluded_platform_mask = scratch.excluded_mask;
    record.latency_us = latency_us;
    if (result.ok()) {
      const OptimizeResult& opt = result->optimize;
      record.cache =
          MapCacheResult(scratch.cache_enabled, result->cache_hit,
                         scratch.cache_untransferable, scratch.cache_cause);
      record.quantized_used = opt.quantized_used;
      record.chosen_platform = static_cast<uint8_t>(opt.chosen_platform);
      record.model_version = opt.model_version;
      record.predicted_runtime_s = opt.predicted_runtime_s;
      record.vectors_created = opt.stats.vectors_created;
      record.vectors_pruned = opt.stats.vectors_pruned;
      record.final_vectors = opt.stats.final_vectors;
      record.oracle_rows = opt.stats.oracle_rows;
      record.num_runners = static_cast<uint32_t>(
          std::min(opt.runners_up.size(), kDecisionRunners));
      for (uint32_t i = 0; i < record.num_runners; ++i) {
        record.runners[i].predicted_runtime_s =
            opt.runners_up[i].predicted_runtime_s;
        record.runners[i].assignment_hash = opt.runners_up[i].assignment_hash;
      }
    } else {
      record.status = result.status().code();
      // A shed never reached the cache; a failed optimize records its
      // preceding miss cause.
      record.cache =
          scratch.shed != ShedReason::kNone
              ? DecisionCacheResult::kDisabled
              : MapCacheResult(scratch.cache_enabled, false,
                               scratch.cache_untransferable,
                               scratch.cache_cause);
    }
    decisions_->Record(record);
  }
  return result;
}

StatusOr<OptimizerService::Result> OptimizerService::OptimizeLegacy(
    const LogicalPlan& plan, const Cardinalities* cards,
    const OptimizeOptions& caller_options, PlanFingerprint* fp_out,
    DecisionScratch* scratch) {
  const auto start = std::chrono::steady_clock::now();

  // Re-optimize-on-failure: mask every open-breaker platform out of the
  // enumeration on top of whatever the caller excluded. Half-open breakers
  // stay routable — the next query through them is the recovery probe. The
  // mask is part of the cache key (HashOptions covers it), so plans cached
  // while a platform was dead never serve after it recovers, and vice
  // versa.
  const uint64_t open_mask = SyncBreakerState();
  OptimizeOptions options = caller_options;
  options.excluded_platform_mask |= open_mask;
  // Serve-level quantized default: when the service was configured for
  // quantized inference, every call requests it. The optimizer only honors
  // the request if the pinned model was published quantized-validated (the
  // gate in RetrainNow/Create), so an unvalidated table never serves.
  options.quantized_inference |= options_.quantized_inference;
  // Service observability: route this call's metrics and span tree into the
  // service-owned sinks, unless the caller brought their own (theirs win —
  // a call-level override must not be silently redirected). obs is not part
  // of the cache key (HashOptions skips it), matching its bit-identical
  // contract.
  if (options_.observability && !options.obs.enabled()) {
    options.obs.metrics = &metrics_;
    options.obs.tracer = &tracer_;
  }
  auto bump = [&options](const char* name) {
    if (!ROBOPT_OBS_ON(options.obs) || options.obs.metrics == nullptr) return;
    if (Counter* counter = options.obs.metrics->GetCounter(name)) {
      counter->Add(1);
    }
  };
  bump("robopt_serve_optimize_calls_total");
  if (open_mask & options.allowed_platform_mask &
      ~caller_options.excluded_platform_mask) {
    std::lock_guard<std::mutex> lock(recovery_mu_);
    ++masked_optimizes_;
  }
  if (scratch != nullptr) {
    scratch->open_mask = open_mask;
    scratch->excluded_mask = options.excluded_platform_mask;
  }
  // With the cache disabled (capacity 0) the O(plan) fingerprint work would
  // be pure per-call overhead — skip key computation and lookup entirely.
  const bool cache_on = plan_cache_.enabled();
  if (scratch != nullptr) scratch->cache_enabled = cache_on;
  PlanCacheKey key;
  std::vector<std::pair<uint64_t, OperatorId>> canonical;
  std::vector<uint64_t> sorted_hashes;
  if (cache_on) {
    std::vector<uint64_t> node_hashes;
    key.plan = FingerprintPlan(plan, &node_hashes);
    if (fp_out != nullptr) *fp_out = key.plan;
    key.cards_hash = cards == nullptr ? 0 : FingerprintCards(*cards);
    key.options_hash = PlanCache::HashOptions(options);
    Canonicalize(node_hashes, &canonical, &sorted_hashes);

    PlanCache::Entry cached;
    PlanCacheMissCause cause = PlanCacheMissCause::kNone;
    if (plan_cache_.Lookup(key, models_.current_version(), sorted_hashes,
                           &cached, &cause)) {
      Result result;
      if (TransferCached(cached, canonical, plan, registry_, start,
                         &result)) {
        bump("robopt_serve_plan_cache_hits_total");
        return result;
      }
      if (scratch != nullptr) scratch->cache_untransferable = true;
    }
    if (scratch != nullptr) scratch->cache_cause = cause;
  }

  auto optimized = optimizer_.Optimize(plan, cards, options);
  if (!optimized.ok()) return optimized.status();
  Result result;
  result.optimize = std::move(optimized.value());

  if (cache_on) {
    plan_cache_.Insert(key, MakeCacheEntry(result, canonical, /*slot=*/0));
  }
  return result;
}

StatusOr<OptimizerService::Result> OptimizerService::OptimizeSharded(
    const LogicalPlan& plan, const Cardinalities* cards,
    const OptimizeOptions& caller_options, const RequestContext& ctx,
    PlanFingerprint* fp_out, DecisionScratch* scratch) {
  const auto start = std::chrono::steady_clock::now();
  // Fingerprint before admission: the canonical fingerprint is the routing
  // key (and double-duties as the cache key inside the shard).
  std::vector<uint64_t> node_hashes;
  PlanCacheKey key;
  key.plan = FingerprintPlan(plan, &node_hashes);
  if (fp_out != nullptr) *fp_out = key.plan;
  key.cards_hash = cards == nullptr ? 0 : FingerprintCards(*cards);
  uint32_t slot = 0;
  const uint32_t shard_index = router_->Route(ctx.tenant, key.plan, &slot);
  Shard& shard = *shards_[shard_index];
  if (scratch != nullptr) scratch->shard = shard_index;

  // SLO feedback into admission: one relaxed load of the engine's cached
  // health. Under critical burn the service prefers shedding early over
  // serving doomed tail requests — the deadline and the queue bound both
  // tighten by their configured factors.
  const bool slo_critical =
      slo_ != nullptr && slo_->health() == SloHealth::kCritical;

  // Admission control. Deadline shedding first: estimated queue delay is
  // (depth + 1) waiting-plus-own service times at the shard's smoothed
  // rate. A request that cannot make its deadline is rejected *now*, while
  // the caller can still fall back, rather than after queueing through the
  // very delay that dooms it.
  double deadline_s = ctx.deadline_s;
  if (deadline_s == 0.0) deadline_s = options_.default_deadline_s;
  double effective_deadline_s = deadline_s;
  if (slo_critical && deadline_s > 0.0) {
    effective_deadline_s = deadline_s * options_.slo.critical_deadline_factor;
  }
  if (effective_deadline_s > 0.0) {
    const double ewma =
        shard.ewma_service_s.load(std::memory_order_relaxed);
    const uint64_t depth = shard.queue.depth();
    const double estimated_s = static_cast<double>(depth + 1) * ewma;
    if (ewma > 0.0 && estimated_s > effective_deadline_s) {
      // Attribution: a request the *untightened* deadline would also have
      // rejected is an ordinary deadline shed; only one rejected purely by
      // the SLO tightening counts as an SLO shed.
      const bool slo_only = estimated_s <= deadline_s;
      if (slo_only) {
        shard.shed_slo.fetch_add(1, std::memory_order_relaxed);
      } else {
        shard.shed_deadline.fetch_add(1, std::memory_order_relaxed);
      }
      if (scratch != nullptr) {
        scratch->shed =
            slo_only ? ShedReason::kSloDeadline : ShedReason::kDeadline;
      }
      // Decay the estimate on every rejection. The EWMA is otherwise
      // only updated by served requests, so a single preemption-inflated
      // sample above every caller's deadline would lock admission out
      // permanently (nothing serves, nothing re-estimates). Shrinking it
      // multiplicatively makes rejected traffic a slow probe: after
      // enough sheds the estimate drops back under the deadline and a
      // real request refreshes it. Racy multi-writer store is fine — the
      // value is a heuristic and every writer moves it toward zero.
      shard.ewma_service_s.store(ewma * 0.98, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          slo_only
              ? "estimated shard queue delay exceeds the SLO-tightened "
                "deadline"
              : "estimated shard queue delay exceeds the request deadline");
    }
  }
  if (slo_critical) {
    // Tightened queue bound: pre-check depth against the reduced capacity.
    // Racy reads are fine — at worst one extra request slips through to
    // the hard TryEnter bound below.
    const uint64_t cap = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               static_cast<double>(options_.shard_queue_capacity) *
               options_.slo.critical_queue_factor));
    if (shard.queue.depth() >= cap) {
      shard.shed_slo.fetch_add(1, std::memory_order_relaxed);
      if (scratch != nullptr) scratch->shed = ShedReason::kSloQueue;
      return Status::ResourceExhausted(
          "shard queue past the SLO-tightened bound");
    }
  }
  uint64_t ticket = 0;
  if (!shard.queue.TryEnter(&ticket)) {
    shard.shed_queue_full.fetch_add(1, std::memory_order_relaxed);
    if (scratch != nullptr) scratch->shed = ShedReason::kQueueFull;
    return Status::ResourceExhausted("shard admission queue is full");
  }
  shard.queue.WaitTurn(ticket);
  // ---- Serving turn: this thread is the shard's executor until Leave().
  const auto serve_start = std::chrono::steady_clock::now();
  auto result =
      RunOnShard(shard, slot, plan, cards, caller_options, key, node_hashes,
                 start, scratch);
  const double service_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serve_start)
          .count();
  // Single writer (the turn holder); admission reads it relaxed.
  const double prev = shard.ewma_service_s.load(std::memory_order_relaxed);
  shard.ewma_service_s.store(
      prev == 0.0 ? service_s : 0.8 * prev + 0.2 * service_s,
      std::memory_order_relaxed);
  shard.processed.fetch_add(1, std::memory_order_relaxed);
  shard.queue.Leave();
  return result;
}

StatusOr<OptimizerService::Result> OptimizerService::RunOnShard(
    Shard& shard, uint32_t slot, const LogicalPlan& plan,
    const Cardinalities* cards, const OptimizeOptions& caller_options,
    const PlanCacheKey& route_key,
    const std::vector<uint64_t>& node_hashes,
    std::chrono::steady_clock::time_point start, DecisionScratch* scratch) {
  // Promotion fan-out: one relaxed uint64 compare against the registry's
  // publish counter. A promotion anywhere is picked up on the next entry
  // into each shard — stale cache entries then die by their version tag
  // (PlanCache's lazy invalidation), so no shard ever stops the world.
  if (shard.pinned_version != models_.published_version()) {
    RepinShard(shard);
  }
  // Breaker fan-out: one epoch compare; on change, reconcile new trips
  // against this shard's cache slice (same delta logic as the legacy
  // SyncBreakerState, but per shard).
  const uint64_t trip_epoch = health_.trip_epoch();
  if (trip_epoch != shard.seen_trip_epoch) {
    uint64_t dropped = 0;
    for (PlatformId p = 0; p < registry_->num_platforms(); ++p) {
      const uint64_t trips = health_.snapshot(p).trips;
      if (trips > shard.last_trips[p]) {
        shard.last_trips[p] = trips;
        dropped += shard.cache.InvalidatePlatform(p);
      }
    }
    shard.seen_trip_epoch = trip_epoch;
    if (dropped > 0) {
      std::lock_guard<std::mutex> lock(recovery_mu_);
      plans_invalidated_on_trip_ += dropped;
    }
  }

  // From here the flow mirrors the legacy path (same masking, same obs
  // counters, same cache discipline) over per-shard state.
  const uint64_t open_mask = health_.OpenMask();
  OptimizeOptions options = caller_options;
  options.excluded_platform_mask |= open_mask;
  options.quantized_inference |= options_.quantized_inference;
  if (options_.observability && !options.obs.enabled()) {
    options.obs.metrics = &metrics_;
    options.obs.tracer = &tracer_;
  }
  auto bump = [&options](const char* name) {
    if (!ROBOPT_OBS_ON(options.obs) || options.obs.metrics == nullptr) return;
    if (Counter* counter = options.obs.metrics->GetCounter(name)) {
      counter->Add(1);
    }
  };
  bump("robopt_serve_optimize_calls_total");
  if (open_mask & options.allowed_platform_mask &
      ~caller_options.excluded_platform_mask) {
    std::lock_guard<std::mutex> lock(recovery_mu_);
    ++masked_optimizes_;
  }

  if (scratch != nullptr) {
    scratch->open_mask = open_mask;
    scratch->excluded_mask = options.excluded_platform_mask;
  }
  const bool cache_on = shard.cache.enabled();
  if (scratch != nullptr) scratch->cache_enabled = cache_on;
  PlanCacheKey key = route_key;
  std::vector<std::pair<uint64_t, OperatorId>> canonical;
  std::vector<uint64_t> sorted_hashes;
  if (cache_on) {
    key.options_hash = PlanCache::HashOptions(options);
    Canonicalize(node_hashes, &canonical, &sorted_hashes);
    PlanCache::Entry cached;
    PlanCacheMissCause cause = PlanCacheMissCause::kNone;
    if (shard.cache.Lookup(key, shard.provider.pinned.version, sorted_hashes,
                           &cached, &cause)) {
      Result result;
      if (TransferCached(cached, canonical, plan, registry_, start,
                         &result)) {
        bump("robopt_serve_plan_cache_hits_total");
        return result;
      }
      if (scratch != nullptr) scratch->cache_untransferable = true;
    }
    if (scratch != nullptr) scratch->cache_cause = cause;
  }

  auto optimized = shard.optimizer.Optimize(plan, cards, options);
  if (!optimized.ok()) return optimized.status();
  Result result;
  result.optimize = std::move(optimized.value());
  if (cache_on) {
    shard.cache.Insert(key, MakeCacheEntry(result, canonical, slot));
  }
  return result;
}

void OptimizerService::RepinShard(Shard& shard) {
  const auto snapshot = models_.Current();
  PinnedOracle pinned;
  shard.memo_exact.reset();
  shard.memo_quantized.reset();
  if (snapshot != nullptr) {
    pinned.version = snapshot->version();
    std::shared_ptr<const CostOracle> exact(snapshot, &snapshot->oracle());
    if (options_.shard_oracle_cache_bytes > 0) {
      shard.memo_exact = std::make_unique<CachingCostOracle>(
          exact.get(), options_.shard_oracle_cache_bytes);
      // Aliasing ptr: addresses the memo, owns the snapshot. The memo's
      // raw inner pointer stays valid because shard.snapshot pins it.
      pinned.oracle = std::shared_ptr<const CostOracle>(
          snapshot, shard.memo_exact.get());
    } else {
      pinned.oracle = std::move(exact);
    }
    if (snapshot->quantized_validated()) {
      std::shared_ptr<const CostOracle> quantized(
          snapshot, &snapshot->quantized_oracle());
      if (options_.shard_oracle_cache_bytes > 0) {
        shard.memo_quantized = std::make_unique<CachingCostOracle>(
            quantized.get(), options_.shard_oracle_cache_bytes);
        pinned.quantized_oracle = std::shared_ptr<const CostOracle>(
            snapshot, shard.memo_quantized.get());
      } else {
        pinned.quantized_oracle = std::move(quantized);
      }
    }
  }
  shard.snapshot = snapshot;
  // Tag with the *snapshot's* version, not the publish counter: if the
  // counter ran ahead of the snapshot load, the mismatch re-pins on the
  // next entry until they agree — never the reverse (believing we hold a
  // version we don't).
  shard.pinned_version = snapshot == nullptr ? 0 : snapshot->version();
  shard.provider.pinned = std::move(pinned);
}

size_t OptimizerService::RebalanceNow() {
  if (shards_.size() < 2) return 0;
  std::lock_guard<std::mutex> lock(rebalance_mu_);
  ShardRouter::MigrationPlan plan;
  if (!router_->DetectImbalance(options_.rebalance_imbalance_factor,
                                options_.rebalance_min_checks, &plan)) {
    return 0;
  }
  Shard& from = *shards_[plan.from];
  Shard& to = *shards_[plan.to];
  // Phase 1 (count): how much payload the move carries. Whether or not any
  // cache entries exist, the slots themselves are retargeted — the load
  // imbalance is real either way.
  const size_t pending = from.cache.CountSlots(plan.slot_set);
  // Retarget routing first: requests for these slots start landing on the
  // destination immediately (cold at worst — a racing in-flight request on
  // the source still serves correctly from its own cache).
  for (uint32_t moved_slot : plan.slots) {
    router_->MoveSlot(moved_slot, plan.to);
  }
  // Phase 2 (payload): hand the entries over, MRU-first, compacted into
  // the destination's cold end. Both caches are internally locked, so this
  // runs concurrently with serving on either shard.
  size_t moved = 0;
  if (pending > 0) {
    moved = to.cache.InsertMigrated(from.cache.ExtractSlots(plan.slot_set));
  }
  return moved;
}

uint32_t OptimizerService::ShardFor(uint64_t tenant,
                                    const LogicalPlan& plan) const {
  if (router_ == nullptr) return 0;
  return router_->ShardOf(
      router_->SlotOf(ShardRouter::RouteHash(tenant, FingerprintPlan(plan))));
}

void OptimizerService::OnExecution(const ExecutionPlan& plan,
                                   const ExecResult& result) {
  // No logs for failed plans (the paper's executors simply die on OOM);
  // TDGEN's failure penalty covers those synthetically.
  if (!std::isfinite(result.cost.total_s)) return;
  const LogicalPlan& logical = plan.logical_plan();
  std::vector<uint8_t> assignment(logical.num_operators(), 0);
  for (const LogicalOperator& op : logical.operators()) {
    const int alt = plan.alt_index(op.id);
    if (alt < 0) return;  // Incomplete plan; nothing to learn from.
    assignment[op.id] = static_cast<uint8_t>(alt + 1);
  }
  // Encode under the *observed* cardinalities: the training point should
  // describe the work the plan actually did.
  auto ctx = EnumerationContext::Make(&logical, registry_, schema_,
                                      &result.observed);
  if (!ctx.ok()) return;
  FeedbackEvent event;
  event.features = EncodeAssignment(ctx.value(), assignment.data());
  event.actual_s = result.cost.total_s;
  if (const auto snapshot = models_.Current(); snapshot != nullptr) {
    event.model_version = snapshot->version();
    float predicted = 0.0f;
    snapshot->oracle().EstimateBatch(event.features.data(), 1,
                                     event.features.size(), &predicted);
    event.predicted_s = predicted;
  }
  collector_.Offer(std::move(event));
  // Past the screening above, so the trace records exactly the feedback the
  // retrain loop accepted.
  if (options_.request_observer != nullptr) {
    options_.request_observer->OnFeedback(plan, result);
  }
}

void OptimizerService::OnExecutionFailure(const ExecutionPlan& plan,
                                          const FailureReport& report) {
  (void)plan;
  (void)report;
  collector_.RecordFailure();
  {
    std::lock_guard<std::mutex> lock(recovery_mu_);
    ++failures_observed_;
  }
  // The failure may just have tripped a breaker: reconcile immediately so
  // stale cached plans through the dead platform are gone before the very
  // next Optimize() call (not merely keyed away by the exclusion mask).
  SyncBreakerState();
}

uint64_t OptimizerService::SyncBreakerState() {
  const uint64_t open_mask = health_.OpenMask();
  std::lock_guard<std::mutex> lock(recovery_mu_);
  for (PlatformId p = 0; p < registry_->num_platforms(); ++p) {
    const uint64_t trips = health_.snapshot(p).trips;
    if (trips > last_trips_[p]) {
      last_trips_[p] = trips;
      plans_invalidated_on_trip_ += plan_cache_.InvalidatePlatform(p);
    }
  }
  return open_mask;
}

void OptimizerService::DrainFeedbackLocked() {
  std::vector<FeedbackEvent> events = collector_.Drain();
  for (FeedbackEvent& event : events) {
    // Fold the prediction error into the version that made the prediction —
    // a promotion mid-stream must not pollute the old version's curve.
    if (event.model_version != 0) {
      if (const auto snapshot = models_.Get(event.model_version);
          snapshot != nullptr) {
        snapshot->ObserveError(AbsLogError(event.predicted_s, event.actual_s),
                               options_.drift_alpha);
      }
    }
    ++drain_seq_;
    if (options_.holdout_every > 0 &&
        drain_seq_ % options_.holdout_every == 0) {
      std::lock_guard<std::mutex> lock(holdout_mu_);
      if (event.features.size() == holdout_.dim()) {
        holdout_.Add(event.features, static_cast<float>(event.actual_s));
      }
      continue;
    }
    if (experience_.RecordRow(event.features, event.actual_s).ok()) {
      ++events_since_train_;
    }
  }
}

MlDataset OptimizerService::HoldoutSnapshot() const {
  std::lock_guard<std::mutex> lock(holdout_mu_);
  return holdout_;
}

StatusOr<RetrainOutcome> OptimizerService::RetrainNow(bool force) {
  std::lock_guard<std::mutex> lock(retrain_mu_);
  DrainFeedbackLocked();

  RetrainOutcome outcome;
  const auto now = std::chrono::steady_clock::now();
  const double since_s =
      std::chrono::duration<double>(now - last_train_).count();
  const bool size_trigger = options_.retrain_min_events > 0 &&
                            events_since_train_ >= options_.retrain_min_events;
  const bool time_trigger = options_.retrain_interval_s > 0.0 &&
                            since_s >= options_.retrain_interval_s &&
                            events_since_train_ > 0;
  if (!force && !size_trigger && !time_trigger) return outcome;

  outcome.triggered = true;
  outcome.experience_rows = experience_.size();
  auto candidate = experience_.Retrain(base_train_, options_.experience_weight,
                                       options_.forest);
  if (!candidate.ok()) return candidate.status();
  last_train_ = now;
  events_since_train_ = 0;
  {
    std::lock_guard<std::mutex> counter_lock(counter_mu_);
    ++retrains_;
  }

  const MlDataset holdout = HoldoutSnapshot();
  outcome.holdout_rows = holdout.size();
  outcome.validated = holdout.size() > 0;
  outcome.candidate_mae = LogSpaceMae(*candidate.value(), holdout);
  const auto incumbent = models_.Current();
  outcome.incumbent_mae =
      incumbent == nullptr ? std::numeric_limits<double>::infinity()
                           : LogSpaceMae(incumbent->forest(), holdout);

  // An empty holdout makes the MAE comparison meaningless (both sides NaN);
  // never let it pass vacuously — the candidate is rejected unless the
  // operator explicitly opted into unvalidated promotion.
  const bool promote =
      outcome.validated
          ? outcome.candidate_mae <=
                outcome.incumbent_mae * (1.0 + options_.promote_tolerance)
          : options_.promote_unvalidated;
  if (promote) {
    std::shared_ptr<RandomForest> forest = std::move(candidate.value());
    // The quantized gate rides on the same holdout: the promoted version
    // serves quantized estimates only when the measured quantized/exact
    // MAE delta stays within the bound (unmeasurable — empty holdout —
    // fails closed to exact serving).
    if (options_.quantized_inference) {
      outcome.quantized_enabled = QuantizedGatePasses(
          *forest, holdout, outcome.candidate_mae,
          options_.quantized_max_mae_delta, &outcome.quantized_mae_delta);
    }
    outcome.version = models_.Publish(std::move(forest), outcome.candidate_mae,
                                      outcome.quantized_enabled);
    outcome.promoted = true;
    // Legacy-path eager invalidation. Shard caches need none: every entry
    // is version-tagged, each shard re-pins on its next request entry, and
    // stale entries die lazily on lookup — promotion never stops the world.
    plan_cache_.InvalidateAll();
    std::lock_guard<std::mutex> counter_lock(counter_mu_);
    ++promotions_;
  } else {
    std::lock_guard<std::mutex> counter_lock(counter_mu_);
    ++rejections_;
  }
  return outcome;
}

uint64_t OptimizerService::PublishExternal(std::shared_ptr<RandomForest> forest) {
  const uint64_t version = models_.Publish(
      std::move(forest), std::numeric_limits<double>::quiet_NaN());
  // Shard caches invalidate lazily via version tags (see RetrainNow).
  plan_cache_.InvalidateAll();
  return version;
}

ServeStats OptimizerService::Stats() const {
  ServeStats stats;
  stats.current_version = models_.current_version();
  stats.versions_published = models_.num_published();
  {
    std::lock_guard<std::mutex> lock(counter_mu_);
    stats.retrains = retrains_;
    stats.promotions = promotions_;
    stats.rejections = rejections_;
  }
  stats.experience_rows = experience_.size();
  {
    std::lock_guard<std::mutex> lock(holdout_mu_);
    stats.holdout_rows = holdout_.size();
  }
  stats.feedback = collector_.stats();
  stats.plan_cache = plan_cache_.stats();
  stats.num_shards = num_shards_resolved_;
  if (!shards_.empty()) {
    const RouterStats router = router_->stats();
    stats.router_rebalances = router.rebalances;
    stats.router_slots_moved = router.slots_moved;
    stats.shards.reserve(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
      const Shard& shard = *shards_[i];
      ShardStats per_shard;
      per_shard.processed =
          shard.processed.load(std::memory_order_relaxed);
      per_shard.shed_queue_full =
          shard.shed_queue_full.load(std::memory_order_relaxed);
      per_shard.shed_deadline =
          shard.shed_deadline.load(std::memory_order_relaxed);
      per_shard.shed_slo = shard.shed_slo.load(std::memory_order_relaxed);
      per_shard.queue_depth = shard.queue.depth();
      per_shard.routed = i < router.routed.size() ? router.routed[i] : 0;
      per_shard.ewma_service_s =
          shard.ewma_service_s.load(std::memory_order_relaxed);
      per_shard.plan_cache = shard.cache.stats();
      stats.shard_processed += per_shard.processed;
      stats.shard_shed_queue_full += per_shard.shed_queue_full;
      stats.shard_shed_deadline += per_shard.shed_deadline;
      stats.shard_shed_slo += per_shard.shed_slo;
      stats.shard_queue_depth += per_shard.queue_depth;
      // The service-wide cache view is the sum of the slices (the legacy
      // plan_cache_ member stays empty in sharded mode).
      stats.plan_cache.Accumulate(per_shard.plan_cache);
      stats.shards.push_back(std::move(per_shard));
    }
  }
  if (const auto snapshot = models_.Current(); snapshot != nullptr) {
    stats.current_drift = snapshot->drift();
  }
  stats.recovery.open_platform_mask = health_.OpenMask();
  stats.recovery.breaker_trips = health_.total_trips();
  stats.recovery.breaker_recoveries = health_.total_recoveries();
  {
    std::lock_guard<std::mutex> lock(recovery_mu_);
    stats.recovery.failures_observed = failures_observed_;
    stats.recovery.masked_optimizes = masked_optimizes_;
    stats.recovery.plans_invalidated_on_trip = plans_invalidated_on_trip_;
  }
  return stats;
}

ObsOptions OptimizerService::obs() {
  ObsOptions options;
  if (options_.observability) {
    options.metrics = &metrics_;
    options.tracer = &tracer_;
  }
  return options;
}

MetricsSnapshot OptimizerService::SnapshotMetrics() const {
  // Refresh every derived-gauge mirror from its source-of-truth struct,
  // then freeze. Counters/histograms written on the hot paths are already
  // live in metrics_ and need no sync.
  Stats().ExportTo(&metrics_);
  health_.ExportTo(&metrics_, registry_->num_platforms());
  if (options_.request_observer != nullptr) {
    options_.request_observer->ExportTo(&metrics_);
  }
  // Process-wide inference telemetry (always on; see ForestKernel). Set
  // mirrors of monotone counters — idempotent like the other gauges.
  metrics_.Set("robopt_ml_forest_rows_scored_total",
               static_cast<double>(ForestKernel::TotalRowsScored()));
  metrics_.Set("robopt_ml_forest_batches_total",
               static_cast<double>(ForestKernel::TotalBatches()));
  // Diagnostics & SLO plane: ring health, sliding-window latency
  // quantiles, burn rates. Each export re-evaluates the objectives first,
  // so a scrape always reads current burn.
  if (decisions_ != nullptr) decisions_->ExportTo(&metrics_);
  if (slo_ != nullptr) {
    const double now_s = SloNow();
    slo_->Evaluate(now_s);
    slo_->ExportTo(&metrics_);
    metrics_.Set("robopt_optimize_latency_p50_us",
                 latency_sketch_->Quantile(0.5, 0.0, now_s));
    metrics_.Set("robopt_optimize_latency_p95_us",
                 latency_sketch_->Quantile(0.95, 0.0, now_s));
    metrics_.Set("robopt_optimize_latency_p99_us",
                 latency_sketch_->Quantile(0.99, 0.0, now_s));
  }
  // Tracer ring health and the build-info/uptime process gauges (the lane
  // string comes from the ml dispatcher — obs stays lane-agnostic).
  tracer_.ExportTo(&metrics_);
  ExportBuildInfo(&metrics_, simd::LaneName(simd::ActiveLane()));
  return metrics_.Snapshot();
}

std::vector<DecisionRecord> OptimizerService::RecentDecisions(
    size_t max_records) const {
  if (decisions_ == nullptr) return {};
  return decisions_->Collect(max_records);
}

std::string OptimizerService::ExportDecisionsJson(size_t max_records) const {
  return ::robopt::ExportDecisionsJson(RecentDecisions(max_records));
}

double OptimizerService::SloNow() const {
  if (options_.slo.clock) return options_.slo.clock();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       service_epoch_)
      .count();
}

void OptimizerService::EvaluateSloNow() {
  if (slo_ != nullptr) slo_->Evaluate(SloNow());
}

SloHealth OptimizerService::slo_health() const {
  return slo_ == nullptr ? SloHealth::kOk : slo_->health();
}

SloStatus OptimizerService::slo_status() const {
  return slo_ == nullptr ? SloStatus{} : slo_->status();
}

std::string OptimizerService::ExportPrometheus() const {
  return robopt::ExportPrometheus(SnapshotMetrics());
}

std::string OptimizerService::ExportTraceJson(uint64_t trace_id) const {
  return ExportChromeTrace(tracer_.Collect(trace_id));
}

void OptimizerService::WorkerLoop() {
  std::unique_lock<std::mutex> lock(worker_mu_);
  while (!stop_) {
    worker_cv_.wait_for(lock,
                        std::chrono::duration<double>(options_.worker_poll_s),
                        [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    // Trigger evaluation + (maybe) a retrain cycle; failures surface only
    // through Stats() — the worker must keep running.
    (void)RetrainNow(false);
    // Burn-rate evaluation each poll: the cached health the admission path
    // reads is at most one poll period stale.
    EvaluateSloNow();
    // Each poll closes one router load window; sustained imbalance across
    // rebalance_min_checks windows migrates cache entries between shards.
    if (shards_.size() > 1) (void)RebalanceNow();
    lock.lock();
  }
}

}  // namespace robopt
