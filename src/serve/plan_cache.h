#ifndef ROBOPT_SERVE_PLAN_CACHE_H_
#define ROBOPT_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/optimizer.h"
#include "plan/fingerprint.h"

namespace robopt {

/// Key of one cached optimization: the canonical plan fingerprint, the
/// injected cardinalities (0 when estimated — the estimate is a pure
/// function of the fingerprinted plan), and the search-relevant optimize
/// options. num_threads and oracle_cache_bytes are deliberately *not* part
/// of the key: results are bit-identical across both by contract (see
/// DESIGN.md, "Threading model & determinism").
struct PlanCacheKey {
  PlanFingerprint plan;
  uint64_t cards_hash = 0;
  uint64_t options_hash = 0;

  bool operator==(const PlanCacheKey& other) const {
    return plan == other.plan && cards_hash == other.cards_hash &&
           options_hash == other.options_hash;
  }
};

struct PlanCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t insertions = 0;
  size_t evictions = 0;      ///< LRU capacity evictions.
  size_t invalidations = 0;  ///< Entries dropped for a stale model version.
  /// Entries dropped by InvalidatePlatform (their plan routed through a
  /// platform whose circuit breaker tripped).
  size_t platform_invalidations = 0;

  /// Mirrors this struct into robopt_plan_cache_* gauges (Set — idempotent;
  /// the struct stays the source of truth).
  void ExportTo(MetricsRegistry* registry) const;
};

/// Bounded, version-tagged LRU cache of optimization results. Entries store
/// the chosen *assignment* rather than an ExecutionPlan — an ExecutionPlan
/// is bound to one LogicalPlan instance, while fingerprint-equal plans are
/// structurally identical, so the assignment transfers and the caller's
/// plan is re-instantiated in O(n).
///
/// Operator ids are insertion-order artifacts: two builds of the same
/// dataflow can number the same operator differently while fingerprinting
/// identically (the fingerprint is deliberately order-independent). The
/// assignment is therefore stored in *canonical* form — (node hash, alt)
/// pairs sorted ascending, where the node hash is the per-operator Merkle
/// value from FingerprintPlan — and a lookup hands back the canonical
/// sequence for the caller to remap onto its own ids through the same
/// sorted order. A hit additionally verifies the caller's sorted node-hash
/// sequence against the entry's; a mismatch (a 128-bit fingerprint
/// collision between structurally different plans) drops the entry and
/// counts as a miss, never as a wrong plan.
///
/// Every entry is tagged with the model version that produced it. A lookup
/// under a newer version discards the entry (lazy invalidation), and the
/// serving layer calls InvalidateAll() on every model promotion — a new
/// model means new costs, so yesterday's best plan is no longer evidence.
class PlanCache {
 public:
  struct Entry {
    /// Canonical assignment: (node hash, chosen alt) sorted by (hash, alt).
    /// Ties are structurally interchangeable operators, so the sorted
    /// pairing is unambiguous up to plan equivalence.
    std::vector<std::pair<uint64_t, int16_t>> assignment;
    float predicted_runtime_s = 0.0f;
    PlatformId chosen_platform = 0;
    uint64_t model_version = 0;
    /// Platforms this plan routes through (bit i = platform id i), from
    /// ExecutionPlan::PlatformsUsed(). Lets InvalidatePlatform drop exactly
    /// the entries a dead platform poisons.
    uint64_t platform_mask = 0;
  };

  /// `capacity` bounds the number of entries (LRU eviction).
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  /// False when constructed with capacity 0: callers skip fingerprinting
  /// entirely (Lookup/Insert would only ever miss).
  bool enabled() const { return capacity_ > 0; }

  /// The search-relevant slice of OptimizeOptions, hashed.
  static uint64_t HashOptions(const OptimizeOptions& options);

  /// On hit under `current_version`, copies the entry into `out`, promotes
  /// it to most-recently-used and returns true. An entry tagged with any
  /// other version counts as a miss and is dropped, as does an entry whose
  /// stored node-hash sequence differs from `sorted_node_hashes` (the
  /// caller plan's per-operator hashes, sorted ascending).
  bool Lookup(const PlanCacheKey& key, uint64_t current_version,
              const std::vector<uint64_t>& sorted_node_hashes, Entry* out);

  /// Inserts (or replaces) the entry for `key`, evicting the LRU tail when
  /// over capacity.
  void Insert(const PlanCacheKey& key, Entry entry);

  /// Drops every entry (called on model promotion).
  void InvalidateAll();

  /// Drops every entry whose plan routes through `platform` (called when the
  /// platform's circuit breaker trips — those plans can no longer run).
  /// Returns the number of entries dropped.
  size_t InvalidatePlatform(PlatformId platform);

  size_t size() const;
  PlanCacheStats stats() const;

 private:
  struct Node {
    PlanCacheKey key;
    Entry entry;
  };

  struct KeyHash {
    size_t operator()(const PlanCacheKey& key) const {
      uint64_t h = key.plan.lo;
      h ^= key.plan.hi + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= key.cards_hash + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= key.options_hash + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  const size_t capacity_;
  mutable std::mutex mu_;  ///< Guards everything below.
  std::list<Node> lru_;    ///< Front = most recently used.
  std::unordered_map<PlanCacheKey, std::list<Node>::iterator, KeyHash> map_;
  PlanCacheStats stats_;
};

}  // namespace robopt

#endif  // ROBOPT_SERVE_PLAN_CACHE_H_
