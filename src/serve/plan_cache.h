#ifndef ROBOPT_SERVE_PLAN_CACHE_H_
#define ROBOPT_SERVE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/optimizer.h"
#include "plan/fingerprint.h"

namespace robopt {

/// Key of one cached optimization: the canonical plan fingerprint, the
/// injected cardinalities (0 when estimated — the estimate is a pure
/// function of the fingerprinted plan), and the search-relevant optimize
/// options. num_threads and oracle_cache_bytes are deliberately *not* part
/// of the key: results are bit-identical across both by contract (see
/// DESIGN.md, "Threading model & determinism").
struct PlanCacheKey {
  PlanFingerprint plan;
  uint64_t cards_hash = 0;
  uint64_t options_hash = 0;

  bool operator==(const PlanCacheKey& other) const {
    return plan == other.plan && cards_hash == other.cards_hash &&
           options_hash == other.options_hash;
  }
};

/// Why a Lookup missed (diagnostics; kNone on a hit). Self-contained here —
/// the obs decision-record layer maps it onto its own vocabulary so the
/// cache stays free of obs includes.
enum class PlanCacheMissCause : uint8_t {
  kNone = 0,          ///< Hit.
  kCold = 1,          ///< No entry under the key.
  kStaleVersion = 2,  ///< Entry predates the current model version.
  kHashMismatch = 3,  ///< Fingerprint collision: node hashes disagreed.
};

struct PlanCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t insertions = 0;
  size_t evictions = 0;      ///< LRU capacity evictions.
  size_t invalidations = 0;  ///< Entries dropped for a stale model version.
  /// Entries dropped by InvalidatePlatform (their plan routed through a
  /// platform whose circuit breaker tripped).
  size_t platform_invalidations = 0;
  /// Entries received from / handed to another shard's cache by the
  /// serving layer's rebalancer (ExtractSlots / InsertMigrated).
  size_t migrated_in = 0;
  size_t migrated_out = 0;

  /// Folds `other` in field by field (the sharded serving layer aggregates
  /// its per-shard caches into one ServeStats view).
  void Accumulate(const PlanCacheStats& other);

  /// Mirrors this struct into robopt_plan_cache_* gauges (Set — idempotent;
  /// the struct stays the source of truth).
  void ExportTo(MetricsRegistry* registry) const;
};

/// Bounded, version-tagged LRU cache of optimization results. Entries store
/// the chosen *assignment* rather than an ExecutionPlan — an ExecutionPlan
/// is bound to one LogicalPlan instance, while fingerprint-equal plans are
/// structurally identical, so the assignment transfers and the caller's
/// plan is re-instantiated in O(n).
///
/// Operator ids are insertion-order artifacts: two builds of the same
/// dataflow can number the same operator differently while fingerprinting
/// identically (the fingerprint is deliberately order-independent). The
/// assignment is therefore stored in *canonical* form — (node hash, alt)
/// pairs sorted ascending, where the node hash is the per-operator Merkle
/// value from FingerprintPlan — and a lookup hands back the canonical
/// sequence for the caller to remap onto its own ids through the same
/// sorted order. A hit additionally verifies the caller's sorted node-hash
/// sequence against the entry's; a mismatch (a 128-bit fingerprint
/// collision between structurally different plans) drops the entry and
/// counts as a miss, never as a wrong plan.
///
/// Every entry is tagged with the model version that produced it. A lookup
/// under a newer version discards the entry (lazy invalidation), and the
/// serving layer calls InvalidateAll() on every model promotion — a new
/// model means new costs, so yesterday's best plan is no longer evidence.
class PlanCache {
 public:
  struct Entry {
    /// Canonical assignment: (node hash, chosen alt) sorted by (hash, alt).
    /// Ties are structurally interchangeable operators, so the sorted
    /// pairing is unambiguous up to plan equivalence.
    std::vector<std::pair<uint64_t, int16_t>> assignment;
    float predicted_runtime_s = 0.0f;
    PlatformId chosen_platform = 0;
    uint64_t model_version = 0;
    /// Platforms this plan routes through (bit i = platform id i), from
    /// ExecutionPlan::PlatformsUsed(). Lets InvalidatePlatform drop exactly
    /// the entries a dead platform poisons.
    uint64_t platform_mask = 0;
    /// Router slot that owns this entry's key (sharded serving only; 0
    /// otherwise). Migration extracts whole slots, so the rebalancer can
    /// hand a re-routed slot's entries to their new shard.
    uint32_t slot = 0;
  };

  /// `capacity` bounds the number of entries (LRU eviction).
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  /// False when constructed with capacity 0: callers skip fingerprinting
  /// entirely (Lookup/Insert would only ever miss).
  bool enabled() const { return capacity_ > 0; }

  /// The search-relevant slice of OptimizeOptions, hashed.
  static uint64_t HashOptions(const OptimizeOptions& options);

  /// On hit under `current_version`, copies the entry into `out`, promotes
  /// it to most-recently-used and returns true. An entry tagged with any
  /// other version counts as a miss and is dropped, as does an entry whose
  /// stored node-hash sequence differs from `sorted_node_hashes` (the
  /// caller plan's per-operator hashes, sorted ascending). `miss_cause`,
  /// when non-null, receives why the lookup missed (kNone on a hit).
  bool Lookup(const PlanCacheKey& key, uint64_t current_version,
              const std::vector<uint64_t>& sorted_node_hashes, Entry* out,
              PlanCacheMissCause* miss_cause = nullptr);

  /// Inserts (or replaces) the entry for `key`, evicting the LRU tail when
  /// over capacity.
  void Insert(const PlanCacheKey& key, Entry entry);

  /// Drops every entry (called on model promotion).
  void InvalidateAll();

  /// Drops every entry whose plan routes through `platform` (called when the
  /// platform's circuit breaker trips — those plans can no longer run).
  /// Returns the number of entries dropped.
  size_t InvalidatePlatform(PlatformId platform);

  /// Phase 1 of a slot migration: how many entries belong to router slots
  /// with set bits in `slots` (indexed by Entry::slot).
  size_t CountSlots(const std::vector<bool>& slots) const;

  /// Phase 2 of a slot migration: removes every entry of the selected slots
  /// and returns them most-recently-used first (counted in migrated_out).
  std::vector<std::pair<PlanCacheKey, Entry>> ExtractSlots(
      const std::vector<bool>& slots);

  /// Destination side of a migration: compacts `entries` (an ExtractSlots
  /// result, MRU first) into this cache's *cold* end, preserving their
  /// relative recency, so arriving entries never displace the destination's
  /// hot set — they re-earn recency on their first hit. Entries beyond
  /// capacity are dropped (counted as evictions). Returns entries inserted.
  size_t InsertMigrated(std::vector<std::pair<PlanCacheKey, Entry>> entries);

  size_t size() const;
  PlanCacheStats stats() const;

 private:
  struct Node {
    PlanCacheKey key;
    Entry entry;
  };

  /// Internal counters on relaxed atomics: the hit/miss bumps happen on
  /// the lookup hot path and stats() is called by exporters at arbitrary
  /// cadence — neither should serialize on (or extend) the LRU critical
  /// section. Monotone telemetry needs no ordering.
  struct AtomicStats {
    std::atomic<size_t> hits{0};
    std::atomic<size_t> misses{0};
    std::atomic<size_t> insertions{0};
    std::atomic<size_t> evictions{0};
    std::atomic<size_t> invalidations{0};
    std::atomic<size_t> platform_invalidations{0};
    std::atomic<size_t> migrated_in{0};
    std::atomic<size_t> migrated_out{0};
  };

  struct KeyHash {
    size_t operator()(const PlanCacheKey& key) const {
      uint64_t h = key.plan.lo;
      h ^= key.plan.hi + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= key.cards_hash + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= key.options_hash + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  const size_t capacity_;
  mutable std::mutex mu_;  ///< Guards the LRU state below (not stats_).
  std::list<Node> lru_;    ///< Front = most recently used.
  std::unordered_map<PlanCacheKey, std::list<Node>::iterator, KeyHash> map_;
  AtomicStats stats_;
};

}  // namespace robopt

#endif  // ROBOPT_SERVE_PLAN_CACHE_H_
