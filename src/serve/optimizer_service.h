#ifndef ROBOPT_SERVE_OPTIMIZER_SERVICE_H_
#define ROBOPT_SERVE_OPTIMIZER_SERVICE_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "exec/platform_health.h"
#include "obs/decision.h"
#include "obs/metrics.h"
#include "obs/sketch.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serve/feedback.h"
#include "serve/model_registry.h"
#include "serve/plan_cache.h"
#include "serve/shard_router.h"
#include "tdgen/experience.h"

namespace robopt {

/// One served Optimize() call, as seen by a RequestObserver: the request
/// (tenant, plan, injected cardinalities, the hash of the caller's
/// options) and its outcome (shed/failed status, cache hit, prediction,
/// serving model version, per-operator assignment). Pointers borrow the
/// caller's arguments and are valid only for the duration of the
/// OnRequest() call; `optimized` is null when the call did not produce a
/// plan (shed or failed).
struct ServedRequest {
  uint64_t tenant = 0;
  const LogicalPlan* plan = nullptr;
  const Cardinalities* cards = nullptr;
  /// PlanCache::HashOptions of the options the caller passed (pre
  /// breaker-masking) — what a faithful re-drive would hash too.
  uint64_t options_hash = 0;
  /// Canonical plan fingerprint when the serving path already computed one
  /// (sharded routing always does; the legacy path only with the plan cache
  /// on). Zero otherwise — observers that need it recompute only then.
  uint64_t fp_lo = 0;
  uint64_t fp_hi = 0;
  StatusCode status = StatusCode::kOk;
  bool cache_hit = false;
  float predicted_runtime_s = 0.0f;
  uint64_t model_version = 0;
  uint8_t chosen_platform = 0;
  const ExecutionPlan* optimized = nullptr;
};

/// Hook into the serving hot paths: every Optimize() reports a
/// ServedRequest, every accepted execution feedback reports the executed
/// plan and its measured result. The workload layer's TraceRecorder
/// implements this to capture production traffic for later replay
/// (mirroring how ExecutionObserver feeds the retrain loop). Observers are
/// called concurrently from every serving thread and must be thread-safe;
/// they run inline on the request path, so implementations buffer and get
/// out of the way.
class RequestObserver {
 public:
  virtual ~RequestObserver() = default;

  virtual void OnRequest(const ServedRequest& request) = 0;

  /// One accepted feedback event (after the service's own finite /
  /// fully-assigned screening — the trace sees exactly what the retrain
  /// loop saw).
  virtual void OnFeedback(const ExecutionPlan& plan,
                          const ExecResult& result) {
    (void)plan;
    (void)result;
  }

  /// Mirrors the observer's counters into the service registry; called
  /// from SnapshotMetrics() like the other derived-gauge sources.
  virtual void ExportTo(MetricsRegistry* registry) { (void)registry; }
};

/// Per-query decision diagnostics ("query explain"): every served call
/// assembles a DecisionRecord — shard routed, cache hit/miss cause, shed
/// reason, breaker/exclusion masks, model version, quantized use,
/// enumeration/prune counts, predicted cost and the top-k runner-up plans —
/// into a bounded lock-free recent-queries ring, exportable as JSON.
/// Served plans and every stat are bit-identical with diagnostics on or
/// off (the runner-up selection reuses the final getOptimal cost batch).
struct DiagnosticsOptions {
  bool enabled = false;
  /// Recent-queries ring capacity (rounded up to a power of two).
  size_t ring_capacity = 1024;
  /// Runner-up plans recorded per decision (capped at kDecisionRunners).
  size_t top_k_runners = kDecisionRunners;
};

/// SLO burn-rate engine over served Optimize() latencies: a sliding-window
/// DDSketch tracks end-to-end latency (queue included), declarative
/// objectives evaluate fast/slow multi-window burn rates, and the cached
/// health state feeds back into sharded admission — under critical burn
/// the service tightens request deadlines and the effective queue bound,
/// preferring early shedding over serving doomed tail requests.
struct ServeSloOptions {
  bool enabled = false;
  /// Objectives to evaluate; empty gets the default SloObjective.
  std::vector<SloObjective> objectives;
  /// Latency sketch shape (see WindowedSketch::Options).
  double sketch_window_s = 60.0;
  size_t sketch_windows = 64;
  double sketch_alpha = 0.01;
  size_t exemplars_per_window = 4;
  /// Under critical burn, the effective admission deadline becomes
  /// deadline * this factor (only meaningful with a deadline configured).
  double critical_deadline_factor = 0.5;
  /// Under critical burn, the effective shard queue bound becomes
  /// max(1, floor(capacity * this factor)).
  double critical_queue_factor = 0.5;
  /// Injectable clock (seconds, any monotone origin) driving sketch
  /// rotation and burn evaluation. Null (default) uses the service's
  /// steady clock. Tests and replays pin this for determinism.
  std::function<double()> clock;
};

/// Configuration of the serving layer.
struct ServeOptions {
  /// Bounded feedback queue between executors and the retrain worker.
  size_t feedback_capacity = 4096;
  /// Size trigger: a retrain fires once this many new events reached the
  /// experience log since the last training run.
  size_t retrain_min_events = 64;
  /// Time trigger in seconds (0 = size trigger only): retrain whenever this
  /// much time passed since the last run and at least one new event landed.
  double retrain_interval_s = 0.0;
  /// Promotion rule: the candidate's holdout MAE (log-space) must satisfy
  /// candidate <= incumbent * (1 + promote_tolerance). Negative values
  /// demand strict improvement.
  double promote_tolerance = 0.10;
  /// What a retrain cycle does when the holdout is empty (holdout_fraction
  /// and holdout_every both zero, or no feedback routed yet) and the MAE
  /// comparison is therefore meaningless: false (default) rejects the
  /// candidate, true publishes it *unvalidated* with NaN MAE recorded —
  /// the same contract as PublishExternal. Either way the cycle reports
  /// validated = false instead of silently passing a vacuous 0 <= 0 check.
  bool promote_unvalidated = false;
  /// Fraction of the base (TDGEN) dataset carved off as the holdout split.
  double holdout_fraction = 0.1;
  uint64_t holdout_seed = 17;
  /// Every holdout_every-th drained feedback event joins the holdout set
  /// instead of the training log, so validation tracks the live workload
  /// too (0 = base-only holdout).
  size_t holdout_every = 5;
  /// Duplication weight of experience rows in retraining
  /// (ExperienceLog::Retrain).
  int experience_weight = 4;
  /// Hyper-parameters of retrained candidate forests (also used when the
  /// service trains v1 itself).
  RandomForest::Params forest;
  /// Request 8-bit quantized-threshold inference for served Optimize()
  /// calls. Default off. Even when on, quantized mode is *gated*: each
  /// published model's quantized/exact holdout log1p-MAE delta is measured,
  /// and only a model within quantized_max_mae_delta is published
  /// quantized-validated (RetrainOutcome::quantized_enabled reports the
  /// decision). Models that fail the bound — and models published with an
  /// empty holdout, where the delta cannot be measured — serve exact.
  bool quantized_inference = false;
  /// The bound: max allowed increase of holdout log1p-MAE when estimating
  /// through the quantized tables instead of the exact thresholds.
  double quantized_max_mae_delta = 0.01;
  /// Plan-cache entries (0 disables the cache).
  size_t plan_cache_capacity = 256;
  /// EWMA smoothing factor of the per-version drift stats.
  double drift_alpha = 0.1;
  /// Model versions kept addressable after replacement.
  size_t model_history = 8;
  /// Spawn the background RetrainWorker thread. Tests that want
  /// deterministic cycles set this false and call RetrainNow().
  bool background_retrain = true;
  /// Worker poll period between trigger checks, in seconds.
  double worker_poll_s = 0.05;
  /// Circuit-breaker thresholds of the service-owned PlatformHealth
  /// registry (consecutive-failure trip threshold, cooldown in virtual
  /// seconds). Executors that should feed the breakers set
  /// ExecutorOptions::health = service->health().
  BreakerOptions breaker;
  /// Turn on the service-owned observability plane: every Optimize() call
  /// records metrics into metrics() and a span tree into tracer() (unless
  /// the caller's OptimizeOptions already carry obs sinks, which win).
  /// Export through ExportPrometheus() / ExportTraceJson(). Off by default;
  /// served plans and stats are bit-identical either way.
  bool observability = false;
  /// Span-ring capacity of the service-owned Tracer (rounded up to a power
  /// of two; oldest spans are overwritten when it wraps).
  size_t trace_capacity = 8192;

  // --- Sharded serving (thread-per-core) ---

  /// Number of independent serving shards, mirroring the num_threads
  /// convention: 0 (the default) resolves to one shard per hardware core,
  /// 1 is the single-instance legacy path (bit-identical to the
  /// pre-sharding service), n is exactly n shards. Each shard owns its own
  /// PlanCache slice, pinned-model handle, oracle memo budget and bounded
  /// admission queue; a lock-free router hashes (tenant, canonical plan
  /// fingerprint) to a shard so repeat queries land on their warm cache.
  /// Served plans are bit-identical across every shard count.
  int num_shards = 0;
  /// Bound of each shard's admission queue: at most this many requests may
  /// be outstanding (waiting + executing) per shard. Beyond it, Optimize()
  /// sheds with kResourceExhausted instead of queueing unboundedly.
  size_t shard_queue_capacity = 64;
  /// Default request deadline in seconds, used when the caller's
  /// RequestContext carries none (0 = no deadline: requests shed only on a
  /// full queue). A request is shed with kResourceExhausted when its
  /// estimated queue delay — (queue depth + 1) times the shard's EWMA
  /// service time — exceeds the deadline.
  double default_deadline_s = 0.0;
  /// Router slot-table size (rounded up to a power of two). More slots =
  /// finer-grained migration; each slot is one atomic word.
  size_t router_slots = 256;
  /// Per-shard oracle memo budget in bytes: a CachingCostOracle is kept in
  /// front of the shard's pinned model, persisting across calls (rebuilt on
  /// promotion). 0 disables it. Estimates are bit-identical either way.
  size_t shard_oracle_cache_bytes = 0;
  /// Sustained-imbalance trigger of slot migration: the hottest shard must
  /// exceed rebalance_imbalance_factor times the per-shard average load for
  /// rebalance_min_checks consecutive observation windows (one window per
  /// worker poll / RebalanceNow call) before cache entries move.
  double rebalance_imbalance_factor = 2.0;
  int rebalance_min_checks = 3;

  /// Request/feedback tap (trace recording). Not owned; must outlive the
  /// service. Null (the default) costs the hot paths nothing.
  RequestObserver* request_observer = nullptr;

  /// Per-query decision diagnostics (recent-queries ring). Off by default.
  DiagnosticsOptions diagnostics;
  /// Latency SLO engine wired into admission control. Off by default.
  ServeSloOptions slo;

  /// Default per-call optimize options.
  OptimizeOptions optimize;
};

/// Per-request serving context (sharded mode). The tenant joins the plan
/// fingerprint in the routing hash, so one tenant's repeat queries stay on
/// one warm shard without interleaving with another tenant's identical
/// plans.
struct RequestContext {
  uint64_t tenant = 0;
  /// Deadline budget in seconds for admission control: 0 defers to
  /// ServeOptions::default_deadline_s, negative means explicitly no
  /// deadline.
  double deadline_s = 0.0;
};

/// What one RetrainNow()/worker cycle did.
struct RetrainOutcome {
  bool triggered = false;  ///< A candidate was trained this cycle.
  bool promoted = false;
  /// True when the candidate was scored against a non-empty holdout. False
  /// means the MAE fields are NaN and the promote decision followed
  /// ServeOptions::promote_unvalidated, not the tolerance rule.
  bool validated = false;
  uint64_t version = 0;        ///< The promoted version (when promoted).
  double candidate_mae = 0.0;  ///< Holdout MAE (log-space) of the candidate.
  double incumbent_mae = 0.0;  ///< Same holdout, current model.
  size_t holdout_rows = 0;
  size_t experience_rows = 0;  ///< Training log size at candidate time.
  /// Quantized gate (only meaningful when promoted and
  /// ServeOptions::quantized_inference is on): the measured holdout
  /// log1p-MAE increase of quantized over exact inference, and whether it
  /// passed quantized_max_mae_delta — i.e. whether the published version
  /// serves quantized estimates.
  double quantized_mae_delta = 0.0;
  bool quantized_enabled = false;
};

/// Fault-recovery counters (the re-optimize-on-failure path).
struct RecoveryStats {
  /// OnExecutionFailure calls observed (injected faults, breaker fast-fails,
  /// retries-exhausted — one per failed Execute).
  uint64_t failures_observed = 0;
  uint64_t breaker_trips = 0;       ///< Closed/half-open -> open transitions.
  uint64_t breaker_recoveries = 0;  ///< Half-open -> closed transitions.
  /// Optimize calls that ran with at least one platform masked out because
  /// its breaker was open (the fallback re-optimizations).
  uint64_t masked_optimizes = 0;
  /// Plan-cache entries dropped because their plan routed through a platform
  /// whose breaker tripped.
  uint64_t plans_invalidated_on_trip = 0;
  /// Platforms whose breaker is open right now (bit i = platform id i).
  uint64_t open_platform_mask = 0;

  /// Mirrors this struct into robopt_recovery_* gauges (Set — idempotent;
  /// the struct stays the source of truth).
  void ExportTo(MetricsRegistry* registry) const;
};

/// Counters of one serving shard (sharded mode only).
struct ShardStats {
  uint64_t processed = 0;        ///< Requests served through the shard.
  uint64_t shed_queue_full = 0;  ///< Rejected: admission queue at capacity.
  uint64_t shed_deadline = 0;    ///< Rejected: estimated delay > deadline.
  /// Rejected only because critical SLO burn tightened the deadline or the
  /// queue bound (the request would have been admitted untightened).
  uint64_t shed_slo = 0;
  uint64_t queue_depth = 0;      ///< Outstanding admitted requests, now.
  uint64_t routed = 0;           ///< Requests the router sent here.
  double ewma_service_s = 0.0;   ///< Smoothed in-shard service time.
  PlanCacheStats plan_cache;     ///< This shard's cache slice.
};

/// Aggregate serving counters.
struct ServeStats {
  uint64_t current_version = 0;
  size_t versions_published = 0;
  size_t retrains = 0;    ///< Candidates trained.
  size_t promotions = 0;  ///< Candidates published.
  size_t rejections = 0;  ///< Candidates that failed validation.
  size_t experience_rows = 0;
  size_t holdout_rows = 0;
  /// Resolved shard count (1 = legacy single-instance path).
  int num_shards = 1;
  /// Per-shard counters; empty on the legacy path.
  std::vector<ShardStats> shards;
  /// Totals across shards (all zero on the legacy path, which has no
  /// admission queue and never sheds).
  uint64_t shard_processed = 0;
  uint64_t shard_shed_queue_full = 0;
  uint64_t shard_shed_deadline = 0;
  uint64_t shard_shed_slo = 0;
  uint64_t shard_queue_depth = 0;
  uint64_t router_rebalances = 0;   ///< Migration decisions applied.
  uint64_t router_slots_moved = 0;  ///< Slot reassignments applied.
  FeedbackStats feedback;
  /// Aggregated over every shard's cache slice in sharded mode (the
  /// migrated_in/out fields carry the cache-entry migration counters).
  PlanCacheStats plan_cache;
  DriftStats current_drift;  ///< Drift of the current version.
  RecoveryStats recovery;

  /// Mirrors the whole aggregate — robopt_serve_* gauges plus the nested
  /// feedback / plan-cache / drift / recovery structs' hooks — into the
  /// registry. The structs stay the source of truth; every gauge is Set
  /// (derived, idempotent), so exporters may call this at any cadence.
  void ExportTo(MetricsRegistry* registry) const;
};

/// The optimizer as a long-lived concurrent service with a model lifecycle:
///
///   - a versioned ModelRegistry serves Optimize() calls through an
///     RCU-style atomic hot swap — in-flight calls keep their pinned model
///     version while a new one is published;
///   - a FeedbackCollector (bounded MPSC queue) absorbs Executor results
///     (plan vector + measured runtime) via the ExecutionObserver hook;
///   - a background RetrainWorker drains feedback into the thread-safe
///     ExperienceLog and, on a size/time trigger, retrains via
///     ExperienceLog::Retrain, validates the candidate on a holdout split,
///     promotes only if MAE does not regress beyond the tolerance, and
///     records per-version drift (predicted-vs-actual error EWMA);
///   - a PlanCache keyed by the canonical logical-plan fingerprint serves
///     repeat queries in O(plan size), invalidated on every promotion;
///   - in sharded mode (resolved num_shards > 1) the service runs
///     thread-per-core style: a lock-free ShardRouter hashes (tenant,
///     fingerprint) to one of N shards, each owning its own PlanCache
///     slice, pinned-model handle, oracle memo and bounded admission queue
///     with deadline-based shedding. Model promotions, breaker trips and
///     cache invalidations fan out to shards through per-shard
///     epoch/version checks on request entry — no stop-the-world. See
///     DESIGN.md, "Sharded serving & load shedding".
///
/// Thread-safe throughout: any number of threads may call Optimize() and
/// Execute() (with this service as the executor's observer) concurrently
/// with the retrain worker.
class OptimizerService : public ExecutionObserver {
 public:
  /// Builds a service over `base` (the TDGEN bootstrap set). `initial`
  /// becomes version 1; when null, the service trains v1 itself on the
  /// non-holdout part of `base` with `options.forest`. Fails if there is
  /// nothing to train on and no initial model was given.
  static StatusOr<std::unique_ptr<OptimizerService>> Create(
      const PlatformRegistry* registry, const FeatureSchema* schema,
      MlDataset base, std::shared_ptr<RandomForest> initial = nullptr,
      ServeOptions options = {});

  ~OptimizerService() override;

  OptimizerService(const OptimizerService&) = delete;
  OptimizerService& operator=(const OptimizerService&) = delete;

  /// One served optimization.
  struct Result {
    OptimizeResult optimize;  ///< model_version is always set.
    bool cache_hit = false;
  };

  /// Optimizes `plan` on the current model version. Safe to call from any
  /// number of threads, including while a promotion is in flight — the
  /// whole call sees one consistent model. In sharded mode a call may be
  /// shed with kResourceExhausted (full shard queue, or estimated queue
  /// delay past the request deadline); plans that are served are
  /// bit-identical to the single-shard path.
  StatusOr<Result> Optimize(const LogicalPlan& plan,
                            const Cardinalities* cards = nullptr);
  StatusOr<Result> Optimize(const LogicalPlan& plan,
                            const Cardinalities* cards,
                            const OptimizeOptions& options);
  StatusOr<Result> Optimize(const LogicalPlan& plan,
                            const Cardinalities* cards,
                            const OptimizeOptions& options,
                            const RequestContext& ctx);

  /// ExecutionObserver: encodes the executed plan under its observed
  /// cardinalities and offers (features, predicted, actual) to the
  /// feedback queue. Non-finite runtimes (OOM) are skipped — mirroring the
  /// paper, which has no logs for failed plans (TDGEN's failure penalty
  /// covers them synthetically).
  void OnExecution(const ExecutionPlan& plan,
                   const ExecResult& result) override;

  /// ExecutionObserver: counts the failure in the feedback stats and, when
  /// the failure tripped a circuit breaker, drops every cached plan that
  /// routes through the now-dead platform — the next Optimize() of those
  /// queries re-plans with the platform masked out of enumeration.
  void OnExecutionFailure(const ExecutionPlan& plan,
                          const FailureReport& report) override;

  /// Runs one synchronous drain / retrain / validate / publish cycle (the
  /// worker's body). `force` trains even if no trigger fired (tests).
  StatusOr<RetrainOutcome> RetrainNow(bool force = false);

  /// Publishes an externally trained model out-of-band (ops push). Skips
  /// holdout validation — the snapshot records NaN MAE — and invalidates
  /// the plan cache. Returns the new version.
  uint64_t PublishExternal(std::shared_ptr<RandomForest> forest);

  /// One imbalance check + (when warranted) one slot migration: closes the
  /// router's load window, and on sustained imbalance retargets the chosen
  /// slots to the coldest shard and moves their cache entries over in two
  /// phases (count, then payload exchange). Called periodically by the
  /// background worker; public so tests and benches without a worker can
  /// drive it. Returns the number of cache entries migrated (0 when
  /// balanced or in legacy mode). Safe to call concurrently with serving.
  size_t RebalanceNow();

  /// The shard (tenant, plan) routes to right now (0 in legacy mode).
  /// Fingerprints the plan; touches no load counters. Benches use this to
  /// build shard-affine workloads.
  uint32_t ShardFor(uint64_t tenant, const LogicalPlan& plan) const;

  /// Resolved shard count (1 = legacy single-instance path).
  int num_shards() const { return num_shards_resolved_; }

  const ModelRegistry& registry() const { return models_; }
  const FeatureSchema& schema() const { return *schema_; }
  ServeStats Stats() const;

  /// The service-owned circuit-breaker registry. Wire it into executors via
  /// ExecutorOptions::health so their successes/failures drive the breaker
  /// state that Optimize() masks on.
  PlatformHealth* health() { return &health_; }

  /// The service-owned metrics registry / span tracer. Always constructed;
  /// the hot paths only write into them when ServeOptions::observability is
  /// set (or when a caller passes them explicitly via ObsOptions).
  MetricsRegistry* metrics() { return &metrics_; }
  Tracer* tracer() { return &tracer_; }

  /// Prefilled per-call observability sinks (empty when observability is
  /// off). Hand this to ExecutorOptions::obs so executions land in the same
  /// metrics registry and trace ring as the optimizer's spans.
  ObsOptions obs();

  /// Point-in-time snapshot of every metric, with the derived-gauge mirrors
  /// (ServeStats / breaker state / SLO burn / sketch quantiles) refreshed
  /// first.
  MetricsSnapshot SnapshotMetrics() const;
  /// Prometheus text exposition (0.0.4) of SnapshotMetrics().
  std::string ExportPrometheus() const;
  /// Chrome trace_event JSON of the span ring (chrome://tracing / Perfetto);
  /// `trace_id` filters to one query's tree (0 = everything retained).
  std::string ExportTraceJson(uint64_t trace_id = 0) const;

  // --- Diagnostics & SLO (ServeOptions::diagnostics / ::slo) ---

  /// The most recent decision records, oldest first (empty with
  /// diagnostics off). `max_records` 0 = everything retained.
  std::vector<DecisionRecord> RecentDecisions(size_t max_records = 0) const;
  /// JSON array of RecentDecisions() — the "explain recent queries" wire
  /// shape.
  std::string ExportDecisionsJson(size_t max_records = 0) const;

  /// Re-evaluates every SLO objective now (no-op with the SLO off). The
  /// background worker calls this each poll; tests and replay drivers call
  /// it explicitly between batches.
  void EvaluateSloNow();
  /// Cached aggregate SLO health (kOk with the SLO off) — what sharded
  /// admission reads.
  SloHealth slo_health() const;
  /// Full per-objective status from the last evaluation.
  SloStatus slo_status() const;
  /// Latency padding in micros added to every *recorded* latency (sketch
  /// only — served requests are unaffected). Test/chaos hook: degrades the
  /// observed distribution to trip burn rates deterministically.
  void set_slo_inject_latency_us(double us) {
    slo_inject_latency_us_.store(us, std::memory_order_relaxed);
  }
  /// The latency sketch behind the SLO engine (null when the SLO is off).
  const WindowedSketch* latency_sketch() const {
    return latency_sketch_.get();
  }

 private:
  struct Shard;

  /// Decision breadcrumbs the inner serving paths deposit for the choke
  /// point's record assembly (pointer-threaded; null when diagnostics and
  /// SLO are both off).
  struct DecisionScratch {
    uint32_t shard = 0;
    ShedReason shed = ShedReason::kNone;
    bool cache_enabled = false;
    PlanCacheMissCause cache_cause = PlanCacheMissCause::kNone;
    bool cache_untransferable = false;
    uint64_t open_mask = 0;
    uint64_t excluded_mask = 0;
  };

  OptimizerService(const PlatformRegistry* registry,
                   const FeatureSchema* schema, ServeOptions options);

  /// The pre-sharding Optimize body, byte-for-byte (resolved num_shards 1).
  /// `fp_out`, when non-null, receives the plan fingerprint if this call
  /// computed one anyway (cache key / routing key) — lets the observer
  /// dispatch hand it to RequestObservers without a second O(plan) pass.
  StatusOr<Result> OptimizeLegacy(const LogicalPlan& plan,
                                  const Cardinalities* cards,
                                  const OptimizeOptions& caller_options,
                                  PlanFingerprint* fp_out = nullptr,
                                  DecisionScratch* scratch = nullptr);
  /// Sharded path: route, admit/shed, then run serialized on the shard.
  StatusOr<Result> OptimizeSharded(const LogicalPlan& plan,
                                   const Cardinalities* cards,
                                   const OptimizeOptions& caller_options,
                                   const RequestContext& ctx,
                                   PlanFingerprint* fp_out = nullptr,
                                   DecisionScratch* scratch = nullptr);
  /// The in-window shard body (caller holds the shard's ticket turn):
  /// epoch checks, cache lookup, optimize, insert.
  StatusOr<Result> RunOnShard(Shard& shard, uint32_t slot,
                              const LogicalPlan& plan,
                              const Cardinalities* cards,
                              const OptimizeOptions& caller_options,
                              const PlanCacheKey& route_key,
                              const std::vector<uint64_t>& node_hashes,
                              std::chrono::steady_clock::time_point start,
                              DecisionScratch* scratch = nullptr);
  /// Seconds on the SLO clock (ServeSloOptions::clock, or the service's
  /// steady clock since construction).
  double SloNow() const;
  /// Re-pins the shard's model handle (and rebuilds its oracle memo) to
  /// the registry's current snapshot. Caller holds the shard's turn.
  void RepinShard(Shard& shard);

  /// Moves queued feedback into drift stats, the holdout set and the
  /// experience log. Caller holds retrain_mu_.
  void DrainFeedbackLocked();
  /// Reconciles breaker trips with the plan cache: any platform whose trip
  /// count grew since the last sync has its cached plans invalidated.
  /// Called from OnExecutionFailure and Optimize (cheap when nothing
  /// changed). Returns the current open-breaker mask.
  uint64_t SyncBreakerState();
  /// Consistent copy of the holdout set.
  MlDataset HoldoutSnapshot() const;
  void WorkerLoop();

  const PlatformRegistry* registry_;
  const FeatureSchema* schema_;
  const ServeOptions options_;

  ModelRegistry models_;
  RoboptOptimizer optimizer_;  ///< Pins models_ per call (OracleProvider).
  FeedbackCollector collector_;
  ExperienceLog experience_;
  PlanCache plan_cache_;  ///< Legacy-path cache (unused in sharded mode).

  /// Sharded serving state. Empty router/shards on the legacy path.
  int num_shards_resolved_ = 1;
  std::unique_ptr<ShardRouter> router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::mutex rebalance_mu_;  ///< Serializes RebalanceNow (single consumer).

  MlDataset base_train_;  ///< Immutable after Create().
  mutable std::mutex holdout_mu_;
  MlDataset holdout_;

  std::mutex retrain_mu_;  ///< Serializes retrain cycles + drain state.
  size_t events_since_train_ = 0;
  size_t drain_seq_ = 0;
  std::chrono::steady_clock::time_point last_train_;

  mutable std::mutex counter_mu_;
  size_t retrains_ = 0;
  size_t promotions_ = 0;
  size_t rejections_ = 0;

  /// Diagnostics & SLO plane (null unless the respective option is on).
  /// The ring and sketch are internally synchronized; mutable because the
  /// const snapshot/export paths rotate windows and re-evaluate burn.
  mutable std::unique_ptr<DecisionRing> decisions_;
  mutable std::unique_ptr<WindowedSketch> latency_sketch_;
  mutable std::unique_ptr<SloEngine> slo_;
  std::atomic<double> slo_inject_latency_us_{0.0};
  std::chrono::steady_clock::time_point service_epoch_;

  /// Internally synchronized; mutable because even read paths (Stats) may
  /// apply the lazy open -> half-open transition.
  mutable PlatformHealth health_;
  /// Service-owned observability plane. Mutable: snapshot/export paths
  /// refresh derived gauges; both types are internally synchronized.
  mutable MetricsRegistry metrics_;
  mutable Tracer tracer_;
  mutable std::mutex recovery_mu_;  ///< Guards the recovery counters below.
  uint64_t failures_observed_ = 0;
  uint64_t masked_optimizes_ = 0;
  uint64_t plans_invalidated_on_trip_ = 0;
  /// Last-seen per-platform trip counts; a delta means new trips to
  /// reconcile against the plan cache.
  std::array<uint64_t, kMaxPlatforms> last_trips_{};

  std::mutex worker_mu_;
  std::condition_variable worker_cv_;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace robopt

#endif  // ROBOPT_SERVE_OPTIMIZER_SERVICE_H_
