#include "serve/shard_router.h"

#include <algorithm>

#include "common/check.h"
#include "common/thread_pool.h"

namespace robopt {

namespace {

constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// splitmix64 finalizer — full-avalanche so consecutive tenants / similar
/// fingerprints spread over slots.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

int ShardRouter::ResolveShardCount(int num_shards) {
  if (num_shards <= 0) return ThreadPool::HardwareThreads();
  return num_shards;
}

uint64_t ShardRouter::RouteHash(uint64_t tenant, const PlanFingerprint& plan) {
  uint64_t h = Mix64(tenant + 0x9e3779b97f4a7c15ULL);
  h ^= plan.lo + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= plan.hi + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return Mix64(h);
}

ShardRouter::ShardRouter(int num_shards, size_t num_slots)
    : num_shards_(std::max(1, num_shards)) {
  size_t slots = RoundUpPow2(std::max<size_t>(
      num_slots, static_cast<size_t>(num_shards_)));
  slot_mask_ = slots - 1;
  owner_ = std::vector<std::atomic<uint32_t>>(slots);
  slot_window_ = std::vector<std::atomic<uint64_t>>(slots);
  shard_routed_ =
      std::vector<std::atomic<uint64_t>>(static_cast<size_t>(num_shards_));
  // Round-robin initial ownership: with slots a power of two and any shard
  // count, every shard owns either floor or ceil of slots/num_shards.
  for (size_t i = 0; i < slots; ++i) {
    owner_[i].store(static_cast<uint32_t>(i % num_shards_), kRelaxed);
  }
}

uint32_t ShardRouter::Route(uint64_t tenant, const PlanFingerprint& plan,
                            uint32_t* slot) {
  const uint32_t s = SlotOf(RouteHash(tenant, plan));
  if (slot != nullptr) *slot = s;
  const uint32_t shard = owner_[s].load(kRelaxed);
  slot_window_[s].fetch_add(1, kRelaxed);
  shard_routed_[shard].fetch_add(1, kRelaxed);
  return shard;
}

bool ShardRouter::DetectImbalance(double imbalance_factor, int min_checks,
                                  ShardRouter::MigrationPlan* plan) {
  ROBOPT_CHECK(plan != nullptr);
  const size_t slots = owner_.size();
  // Close the window: read-and-reset every slot counter, grouping load by
  // current owner. exchange(0) keeps hits that race with the close — they
  // simply land in the next window.
  std::vector<uint64_t> slot_load(slots, 0);
  std::vector<uint64_t> shard_load(static_cast<size_t>(num_shards_), 0);
  uint64_t total = 0;
  for (size_t i = 0; i < slots; ++i) {
    const uint64_t n = slot_window_[i].exchange(0, kRelaxed);
    slot_load[i] = n;
    shard_load[owner_[i].load(kRelaxed)] += n;
    total += n;
  }
  if (num_shards_ < 2 || total == 0) {
    imbalance_streak_ = 0;
    return false;
  }
  const double avg =
      static_cast<double>(total) / static_cast<double>(num_shards_);
  uint32_t hot = 0, cold = 0;
  for (uint32_t s = 1; s < static_cast<uint32_t>(num_shards_); ++s) {
    if (shard_load[s] > shard_load[hot]) hot = s;
    if (shard_load[s] < shard_load[cold]) cold = s;
  }
  if (static_cast<double>(shard_load[hot]) <= imbalance_factor * avg) {
    imbalance_streak_ = 0;
    return false;
  }
  if (++imbalance_streak_ < min_checks) return false;

  // Sustained imbalance. Pick the hot shard's busiest slots, hottest first,
  // until the excess over average is covered — but never drain the shard
  // past the average itself (a single mega-hot slot that would overshoot to
  // the cold side is skipped; hashing cannot split one key).
  std::vector<uint32_t> hot_slots;
  for (size_t i = 0; i < slots; ++i) {
    if (owner_[i].load(kRelaxed) == hot && slot_load[i] > 0) {
      hot_slots.push_back(static_cast<uint32_t>(i));
    }
  }
  std::sort(hot_slots.begin(), hot_slots.end(),
            [&slot_load](uint32_t a, uint32_t b) {
              if (slot_load[a] != slot_load[b]) {
                return slot_load[a] > slot_load[b];
              }
              return a < b;  // Deterministic tie-break.
            });
  const uint64_t target = shard_load[hot] - static_cast<uint64_t>(avg);
  uint64_t moved = 0;
  plan->from = hot;
  plan->to = cold;
  plan->slots.clear();
  plan->slot_set.assign(slots, false);
  for (uint32_t s : hot_slots) {
    if (moved >= target) break;
    // Taking this slot must not push the destination above the average —
    // otherwise the move just relocates the hotspot.
    if (static_cast<double>(shard_load[cold] + moved + slot_load[s]) >
        avg * 1.25) {
      continue;
    }
    plan->slots.push_back(s);
    plan->slot_set[s] = true;
    moved += slot_load[s];
  }
  imbalance_streak_ = 0;
  if (plan->slots.empty()) return false;
  rebalances_.fetch_add(1, kRelaxed);
  return true;
}

void ShardRouter::MoveSlot(uint32_t slot, uint32_t to) {
  ROBOPT_CHECK(slot < owner_.size());
  ROBOPT_CHECK(to < static_cast<uint32_t>(num_shards_));
  owner_[slot].store(to, kRelaxed);
  slots_moved_.fetch_add(1, kRelaxed);
}

RouterStats ShardRouter::stats() const {
  RouterStats out;
  out.routed.reserve(shard_routed_.size());
  for (const auto& c : shard_routed_) out.routed.push_back(c.load(kRelaxed));
  out.rebalances = rebalances_.load(kRelaxed);
  out.slots_moved = slots_moved_.load(kRelaxed);
  return out;
}

}  // namespace robopt
