#include "serve/plan_cache.h"

#include "obs/metrics.h"

namespace robopt {

void PlanCacheStats::ExportTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->Set("robopt_plan_cache_hits", static_cast<double>(hits));
  registry->Set("robopt_plan_cache_misses", static_cast<double>(misses));
  registry->Set("robopt_plan_cache_insertions",
                static_cast<double>(insertions));
  registry->Set("robopt_plan_cache_evictions",
                static_cast<double>(evictions));
  registry->Set("robopt_plan_cache_invalidations",
                static_cast<double>(invalidations));
  registry->Set("robopt_plan_cache_platform_invalidations",
                static_cast<double>(platform_invalidations));
}

uint64_t PlanCache::HashOptions(const OptimizeOptions& options) {
  uint64_t h = options.allowed_platform_mask;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(options.excluded_platform_mask);
  mix(options.single_platform ? 1 : 0);
  mix(static_cast<uint64_t>(options.priority));
  mix(static_cast<uint64_t>(options.prune));
  // Quantized estimates may pick a different plan than exact ones, so the
  // two modes must never share a cache entry.
  mix(options.quantized_inference ? 1 : 0);
  return h;
}

namespace {

/// The entry's stored (hash, alt) pairs are sorted by hash, so positional
/// comparison against the caller's sorted hash sequence decides whether the
/// two plans are genuinely the same dataflow or a fingerprint collision.
bool HashesMatch(const std::vector<std::pair<uint64_t, int16_t>>& assignment,
                 const std::vector<uint64_t>& sorted_node_hashes) {
  if (assignment.size() != sorted_node_hashes.size()) return false;
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i].first != sorted_node_hashes[i]) return false;
  }
  return true;
}

}  // namespace

bool PlanCache::Lookup(const PlanCacheKey& key, uint64_t current_version,
                       const std::vector<uint64_t>& sorted_node_hashes,
                       Entry* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return false;
  }
  if (it->second->entry.model_version != current_version) {
    // Lazy invalidation: a promotion happened since this was cached.
    lru_.erase(it->second);
    map_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return false;
  }
  if (!HashesMatch(it->second->entry.assignment, sorted_node_hashes)) {
    // Full-key collision between structurally different plans: serving the
    // entry would assign alternatives to the wrong operators. Drop it.
    lru_.erase(it->second);
    map_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->entry;
  ++stats_.hits;
  return true;
}

void PlanCache::Insert(const PlanCacheKey& key, Entry entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.insertions;
    return;
  }
  lru_.push_front(Node{key, std::move(entry)});
  map_[key] = lru_.begin();
  ++stats_.insertions;
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

size_t PlanCache::InvalidatePlatform(PlatformId platform) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t bit = 1ull << platform;
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->entry.platform_mask & bit) {
      map_.erase(it->key);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.platform_invalidations += dropped;
  return dropped;
}

void PlanCache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidations += map_.size();
  map_.clear();
  lru_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace robopt
