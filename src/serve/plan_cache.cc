#include "serve/plan_cache.h"

#include "obs/metrics.h"

namespace robopt {

namespace {
/// All stats counters are monotone telemetry; relaxed is sufficient.
constexpr std::memory_order kRelaxed = std::memory_order_relaxed;
}  // namespace

void PlanCacheStats::Accumulate(const PlanCacheStats& other) {
  hits += other.hits;
  misses += other.misses;
  insertions += other.insertions;
  evictions += other.evictions;
  invalidations += other.invalidations;
  platform_invalidations += other.platform_invalidations;
  migrated_in += other.migrated_in;
  migrated_out += other.migrated_out;
}

void PlanCacheStats::ExportTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->Set("robopt_plan_cache_hits", static_cast<double>(hits));
  registry->Set("robopt_plan_cache_misses", static_cast<double>(misses));
  registry->Set("robopt_plan_cache_insertions",
                static_cast<double>(insertions));
  registry->Set("robopt_plan_cache_evictions",
                static_cast<double>(evictions));
  registry->Set("robopt_plan_cache_invalidations",
                static_cast<double>(invalidations));
  registry->Set("robopt_plan_cache_platform_invalidations",
                static_cast<double>(platform_invalidations));
  registry->Set("robopt_plan_cache_migrated_in",
                static_cast<double>(migrated_in));
  registry->Set("robopt_plan_cache_migrated_out",
                static_cast<double>(migrated_out));
}

uint64_t PlanCache::HashOptions(const OptimizeOptions& options) {
  uint64_t h = options.allowed_platform_mask;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(options.excluded_platform_mask);
  mix(options.single_platform ? 1 : 0);
  mix(static_cast<uint64_t>(options.priority));
  mix(static_cast<uint64_t>(options.prune));
  // Quantized estimates may pick a different plan than exact ones, so the
  // two modes must never share a cache entry.
  mix(options.quantized_inference ? 1 : 0);
  return h;
}

namespace {

/// The entry's stored (hash, alt) pairs are sorted by hash, so positional
/// comparison against the caller's sorted hash sequence decides whether the
/// two plans are genuinely the same dataflow or a fingerprint collision.
bool HashesMatch(const std::vector<std::pair<uint64_t, int16_t>>& assignment,
                 const std::vector<uint64_t>& sorted_node_hashes) {
  if (assignment.size() != sorted_node_hashes.size()) return false;
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i].first != sorted_node_hashes[i]) return false;
  }
  return true;
}

}  // namespace

bool PlanCache::Lookup(const PlanCacheKey& key, uint64_t current_version,
                       const std::vector<uint64_t>& sorted_node_hashes,
                       Entry* out, PlanCacheMissCause* miss_cause) {
  auto cause = [miss_cause](PlanCacheMissCause c) {
    if (miss_cause != nullptr) *miss_cause = c;
  };
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    stats_.misses.fetch_add(1, kRelaxed);
    cause(PlanCacheMissCause::kCold);
    return false;
  }
  if (it->second->entry.model_version != current_version) {
    // Lazy invalidation: a promotion happened since this was cached.
    lru_.erase(it->second);
    map_.erase(it);
    stats_.invalidations.fetch_add(1, kRelaxed);
    stats_.misses.fetch_add(1, kRelaxed);
    cause(PlanCacheMissCause::kStaleVersion);
    return false;
  }
  if (!HashesMatch(it->second->entry.assignment, sorted_node_hashes)) {
    // Full-key collision between structurally different plans: serving the
    // entry would assign alternatives to the wrong operators. Drop it.
    lru_.erase(it->second);
    map_.erase(it);
    stats_.invalidations.fetch_add(1, kRelaxed);
    stats_.misses.fetch_add(1, kRelaxed);
    cause(PlanCacheMissCause::kHashMismatch);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->entry;
  stats_.hits.fetch_add(1, kRelaxed);
  cause(PlanCacheMissCause::kNone);
  return true;
}

void PlanCache::Insert(const PlanCacheKey& key, Entry entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    stats_.insertions.fetch_add(1, kRelaxed);
    return;
  }
  lru_.push_front(Node{key, std::move(entry)});
  map_[key] = lru_.begin();
  stats_.insertions.fetch_add(1, kRelaxed);
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    stats_.evictions.fetch_add(1, kRelaxed);
  }
}

size_t PlanCache::InvalidatePlatform(PlatformId platform) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t bit = 1ull << platform;
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->entry.platform_mask & bit) {
      map_.erase(it->key);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.platform_invalidations.fetch_add(dropped, kRelaxed);
  return dropped;
}

size_t PlanCache::CountSlots(const std::vector<bool>& slots) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const Node& node : lru_) {
    if (node.entry.slot < slots.size() && slots[node.entry.slot]) ++count;
  }
  return count;
}

std::vector<std::pair<PlanCacheKey, PlanCache::Entry>> PlanCache::ExtractSlots(
    const std::vector<bool>& slots) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<PlanCacheKey, Entry>> out;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->entry.slot < slots.size() && slots[it->entry.slot]) {
      map_.erase(it->key);
      out.emplace_back(it->key, std::move(it->entry));
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.migrated_out.fetch_add(out.size(), kRelaxed);
  return out;  // lru_ iteration order: MRU first.
}

size_t PlanCache::InsertMigrated(
    std::vector<std::pair<PlanCacheKey, Entry>> entries) {
  if (capacity_ == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  size_t inserted = 0;
  for (auto& [key, entry] : entries) {
    if (map_.count(key) != 0) continue;  // Destination already knows it.
    if (map_.size() >= capacity_) {
      // The cold end is full: the remaining (even colder) migrants would
      // only displace what was just compacted in. Drop them.
      stats_.evictions.fetch_add(1, kRelaxed);
      continue;
    }
    // Appending MRU-first input to the back keeps relative recency: the
    // hottest migrant sits closest to the destination's resident set.
    lru_.push_back(Node{key, std::move(entry)});
    map_[key] = std::prev(lru_.end());
    ++inserted;
  }
  stats_.migrated_in.fetch_add(inserted, kRelaxed);
  return inserted;
}

void PlanCache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidations.fetch_add(map_.size(), kRelaxed);
  map_.clear();
  lru_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

PlanCacheStats PlanCache::stats() const {
  // Relaxed snapshot — no lock, so exporters and per-shard aggregation
  // never contend with the lookup path.
  PlanCacheStats out;
  out.hits = stats_.hits.load(kRelaxed);
  out.misses = stats_.misses.load(kRelaxed);
  out.insertions = stats_.insertions.load(kRelaxed);
  out.evictions = stats_.evictions.load(kRelaxed);
  out.invalidations = stats_.invalidations.load(kRelaxed);
  out.platform_invalidations = stats_.platform_invalidations.load(kRelaxed);
  out.migrated_in = stats_.migrated_in.load(kRelaxed);
  out.migrated_out = stats_.migrated_out.load(kRelaxed);
  return out;
}

}  // namespace robopt
