#ifndef ROBOPT_WORKLOAD_TRACE_REPLAY_H_
#define ROBOPT_WORKLOAD_TRACE_REPLAY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "workload/workload.h"

namespace robopt {

/// Re-drives a recorded production trace as a workload stream. Load() reads
/// and fully validates the trace (header magic/version, per-record CRC,
/// bounds-checked plan deserialization) and surfaces any corruption as a
/// structured Status — a trace that loads cleanly replays cleanly. Each
/// optimize record carries its RecordedOutcome so the driver can verify
/// bit-identity against the original run.
class TraceReplaySource : public WorkloadSource {
 public:
  TraceReplaySource(std::string path, WorkloadOptions options = {})
      : path_(std::move(path)), options_(options) {}

  Status Load() override;
  bool GetNext(WorkloadOp* op) override;
  std::string_view name() const override { return "trace_replay"; }

  size_t num_ops() const { return ops_.size(); }
  size_t num_plans() const { return plans_.size(); }

 private:
  const std::string path_;
  WorkloadOptions options_;
  /// Deserialized plans keyed by 16-byte fingerprint.
  std::unordered_map<std::string, LogicalPlan> plans_;
  std::vector<WorkloadOp> ops_;
  size_t next_ = 0;
  bool loaded_ = false;
};

}  // namespace robopt

#endif  // ROBOPT_WORKLOAD_TRACE_REPLAY_H_
