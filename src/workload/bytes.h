#ifndef ROBOPT_WORKLOAD_BYTES_H_
#define ROBOPT_WORKLOAD_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace robopt {

/// Little-endian append-only byte buffer. All trace payloads are built
/// through this, so the on-disk encoding is identical across hosts this
/// repo targets (fixed-width little-endian scalars, IEEE-754 doubles).
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { Raw(&v, sizeof v); }
  void U32(uint32_t v) { Raw(&v, sizeof v); }
  void U64(uint64_t v) { Raw(&v, sizeof v); }
  void I16(int16_t v) { Raw(&v, sizeof v); }
  void I32(int32_t v) { Raw(&v, sizeof v); }
  void F32(float v) { Raw(&v, sizeof v); }
  void F64(double v) { Raw(&v, sizeof v); }
  /// Length-prefixed (u16) byte string.
  void Str(std::string_view s) {
    U16(static_cast<uint16_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  /// Unprefixed bytes; the caller writes its own length.
  void Bytes(std::string_view s) { buf_.append(s.data(), s.size()); }

  const std::string& bytes() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void Raw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked little-endian reader over an immutable buffer. Every Read
/// returns false instead of running past the end, so a truncated or
/// corrupted payload can never read out of bounds — callers turn a false
/// into a structured Status.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v) { return Raw(v, sizeof *v); }
  bool U16(uint16_t* v) { return Raw(v, sizeof *v); }
  bool U32(uint32_t* v) { return Raw(v, sizeof *v); }
  bool U64(uint64_t* v) { return Raw(v, sizeof *v); }
  bool I16(int16_t* v) { return Raw(v, sizeof *v); }
  bool I32(int32_t* v) { return Raw(v, sizeof *v); }
  bool F32(float* v) { return Raw(v, sizeof *v); }
  bool F64(double* v) { return Raw(v, sizeof *v); }
  bool Str(std::string* s, size_t max_len = 4096) {
    uint16_t len = 0;
    if (!U16(&len)) return false;
    if (len > max_len || pos_ + len > data_.size()) return false;
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  /// Reads exactly `n` unprefixed bytes.
  bool Bytes(std::string* s, size_t n) {
    if (pos_ + n > data_.size()) return false;
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool Done() const { return pos_ == data_.size(); }

 private:
  bool Raw(void* p, size_t n) {
    if (pos_ + n > data_.size()) return false;
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace robopt

#endif  // ROBOPT_WORKLOAD_BYTES_H_
