#include "workload/trace_records.h"

#include "workload/bytes.h"

namespace robopt {
namespace {

/// Assignments and cards blocks are bounded by the 256-operator plan cap;
/// anything larger is corruption.
constexpr size_t kMaxAssignment = 1024;
constexpr size_t kMaxNestedBytes = kMaxTracePayload;

void WriteAssignment(ByteWriter* w, const std::vector<int16_t>& assignment) {
  w->U16(static_cast<uint16_t>(assignment.size()));
  for (int16_t a : assignment) w->I16(a);
}

bool ReadAssignment(ByteReader* r, std::vector<int16_t>* assignment) {
  uint16_t n = 0;
  if (!r->U16(&n) || n > kMaxAssignment) return false;
  assignment->resize(n);
  for (uint16_t i = 0; i < n; ++i) {
    if (!r->I16(&(*assignment)[i])) return false;
  }
  return true;
}

/// Nested byte strings (plan / cards blocks) use a u32 length prefix — plan
/// bytes can exceed the u16 Str limit.
void WriteBytes(ByteWriter* w, std::string_view bytes) {
  w->U32(static_cast<uint32_t>(bytes.size()));
  w->Bytes(bytes);
}

bool ReadBytes(ByteReader* r, std::string* bytes) {
  uint32_t n = 0;
  if (!r->U32(&n) || n > kMaxNestedBytes) return false;
  return r->Bytes(bytes, n);
}

bool ReadType(ByteReader* r, TraceRecordType want) {
  uint8_t type = 0;
  return r->U8(&type) && type == static_cast<uint8_t>(want);
}

}  // namespace

std::string EncodePlanDef(const TracePlanDef& rec) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(TraceRecordType::kPlanDef));
  w.U64(rec.fp_hi);
  w.U64(rec.fp_lo);
  WriteBytes(&w, rec.plan_bytes);
  return w.Take();
}

StatusOr<TracePlanDef> DecodePlanDef(std::string_view payload) {
  ByteReader r(payload);
  TracePlanDef rec;
  if (!ReadType(&r, TraceRecordType::kPlanDef)) {
    return Status::InvalidArgument("payload is not a plan-def record");
  }
  if (!r.U64(&rec.fp_hi) || !r.U64(&rec.fp_lo) ||
      !ReadBytes(&r, &rec.plan_bytes) || !r.Done()) {
    return Status::OutOfRange("malformed plan-def record");
  }
  if (rec.plan_bytes.empty()) {
    return Status::InvalidArgument("plan-def record carries no plan");
  }
  return rec;
}

std::string EncodeOptimizeRecord(const TraceOptimizeRecord& rec) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(TraceRecordType::kOptimize));
  w.U64(rec.sequence);
  w.U64(rec.tenant);
  w.U64(rec.wall_ns);
  w.U64(rec.rel_ns);
  w.U64(rec.fp_hi);
  w.U64(rec.fp_lo);
  w.U64(rec.options_hash);
  w.U8(rec.status_code);
  w.U8(rec.cache_hit ? 1 : 0);
  w.F32(rec.predicted_runtime_s);
  w.U64(rec.model_version);
  w.U8(rec.chosen_platform);
  WriteAssignment(&w, rec.assignment);
  w.U8(rec.has_cards ? 1 : 0);
  if (rec.has_cards) WriteBytes(&w, rec.cards_bytes);
  return w.Take();
}

StatusOr<TraceOptimizeRecord> DecodeOptimizeRecord(std::string_view payload) {
  ByteReader r(payload);
  TraceOptimizeRecord rec;
  if (!ReadType(&r, TraceRecordType::kOptimize)) {
    return Status::InvalidArgument("payload is not an optimize record");
  }
  uint8_t cache_hit = 0, has_cards = 0;
  if (!r.U64(&rec.sequence) || !r.U64(&rec.tenant) || !r.U64(&rec.wall_ns) ||
      !r.U64(&rec.rel_ns) || !r.U64(&rec.fp_hi) || !r.U64(&rec.fp_lo) ||
      !r.U64(&rec.options_hash) || !r.U8(&rec.status_code) ||
      !r.U8(&cache_hit) || !r.F32(&rec.predicted_runtime_s) ||
      !r.U64(&rec.model_version) || !r.U8(&rec.chosen_platform) ||
      !ReadAssignment(&r, &rec.assignment) || !r.U8(&has_cards)) {
    return Status::OutOfRange("malformed optimize record");
  }
  if (cache_hit > 1 || has_cards > 1) {
    return Status::InvalidArgument("optimize record flag out of range");
  }
  rec.cache_hit = cache_hit != 0;
  rec.has_cards = has_cards != 0;
  if (rec.has_cards && !ReadBytes(&r, &rec.cards_bytes)) {
    return Status::OutOfRange("malformed optimize record cards");
  }
  if (!r.Done()) {
    return Status::InvalidArgument("trailing bytes in optimize record");
  }
  return rec;
}

std::string EncodeFeedbackRecord(const TraceFeedbackRecord& rec) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(TraceRecordType::kFeedback));
  w.U64(rec.tenant);
  w.U64(rec.rel_ns);
  w.U64(rec.fp_hi);
  w.U64(rec.fp_lo);
  w.F64(rec.actual_runtime_s);
  WriteAssignment(&w, rec.assignment);
  WriteBytes(&w, rec.cards_bytes);
  return w.Take();
}

StatusOr<TraceFeedbackRecord> DecodeFeedbackRecord(std::string_view payload) {
  ByteReader r(payload);
  TraceFeedbackRecord rec;
  if (!ReadType(&r, TraceRecordType::kFeedback)) {
    return Status::InvalidArgument("payload is not a feedback record");
  }
  if (!r.U64(&rec.tenant) || !r.U64(&rec.rel_ns) || !r.U64(&rec.fp_hi) ||
      !r.U64(&rec.fp_lo) || !r.F64(&rec.actual_runtime_s) ||
      !ReadAssignment(&r, &rec.assignment) || !ReadBytes(&r, &rec.cards_bytes)) {
    return Status::OutOfRange("malformed feedback record");
  }
  if (!r.Done()) {
    return Status::InvalidArgument("trailing bytes in feedback record");
  }
  return rec;
}

}  // namespace robopt
