#include "workload/workload.h"

namespace robopt {

void WorkloadSource::CountOp(const WorkloadOptions& options, WorkloadOp* op) {
  op->sequence = next_sequence_++;
  if (options.metrics == nullptr) return;
  if (!counter_resolved_) {
    counter_resolved_ = true;
    ops_counter_ = options.metrics->GetCounter(
        "robopt_workload_ops_total{source=\"" + std::string(name()) + "\"}");
  }
  if (ops_counter_ != nullptr) ops_counter_->Add(1);
}

}  // namespace robopt
