#ifndef ROBOPT_WORKLOAD_GENERATORS_H_
#define ROBOPT_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "workload/arrival.h"
#include "workload/workload.h"

namespace robopt {

/// Plan pools the generated sources draw from. The paper pool adapts the
/// existing src/workloads query builders (Table II); the synthetic pool
/// adapts the src/workloads synthetic generators (pipelines, join trees,
/// iterative plans).
enum class PlanPool {
  kPaper,
  kSynthetic,
  kMixed,
};

/// The Table II suite at a common scale (WordCount, Word2NVec, SimWords,
/// TPC-H Q1/Q3, Aggregate, Join, K-means, SGD, CrocoPR). `scale_gb` sizes
/// the text/relational inputs; MB-sized inputs scale proportionally. Also
/// registers the suite's execution kernels (idempotent), so pool plans can
/// really execute.
std::vector<LogicalPlan> MakePaperPlanPool(double scale_gb);

/// `count` deterministic synthetic plans seeded from `seed`: a rotation of
/// pipelines, join trees and loop plans with varied sizes/cardinalities.
std::vector<LogicalPlan> MakeSyntheticPlanPool(int count, uint64_t seed);

/// Knobs of the open-loop multi-tenant generator.
struct GeneratorOptions {
  WorkloadOptions base;
  ArrivalOptions arrival;
  /// Probability an optimize is followed by a feedback op for the same
  /// tenant (arriving a service-delay later). Generated feedback ops carry
  /// an empty assignment — the driver applies them to the tenant's last
  /// served plan, so the assignment is always valid.
  double feedback_fraction = 0.3;
  /// Probability a tenant re-issues one of its two home plans instead of a
  /// uniform pool draw — repeat traffic for the plan cache and trace dedup.
  double tenant_affinity = 0.8;
  /// Fraction of optimize ops that inject (noisy estimated) cardinalities.
  double cards_fraction = 0.5;
  /// Input scale of the paper pool, in GB.
  double paper_scale_gb = 0.02;
  int synthetic_pool_size = 12;
};

/// Open-loop multi-tenant stream over a plan pool: arrivals from the
/// configured ArrivalProcess, tenants drawn Zipf(s) (a few tenants dominate
/// — the heavy-tailed mix), per-tenant plan affinity, optional feedback
/// ops. The whole stream is pregenerated at Load() from the seed, so it is
/// byte-identical for a (options, seed) pair regardless of how fast the
/// consumer pulls.
class OpenLoopSource : public WorkloadSource {
 public:
  explicit OpenLoopSource(PlanPool pool, GeneratorOptions options = {});

  Status Load() override;
  bool GetNext(WorkloadOp* op) override;
  std::string_view name() const override { return name_; }

 private:
  const PlanPool pool_kind_;
  const GeneratorOptions options_;
  std::string name_;
  std::vector<WorkloadOp> ops_;
  size_t next_ = 0;
  bool loaded_ = false;
};

/// Long-running checkpoint/restart jobs in the Daly model: each job owns
/// `job_work_s` of work, fails with exponential MTBF, and checkpoints every
/// tau = sqrt(2 * checkpoint_cost_s * mtbf_s) seconds (Daly's first-order
/// optimum). The stream is one optimize per job submission plus one
/// feedback per completed segment (its wall time includes the checkpoint
/// write and any rework lost to failures) — the sparse, long-horizon
/// traffic shape of scientific/batch tenants.
class CheckpointRestartSource : public WorkloadSource {
 public:
  struct Options {
    WorkloadOptions base;
    double job_rate_per_s = 0.2;  ///< Poisson job submissions.
    double mtbf_s = 600.0;
    double checkpoint_cost_s = 5.0;
    double job_work_s = 900.0;
    int loop_iterations = 8;  ///< Loop depth of the job's iterative plan.
  };

  CheckpointRestartSource() : CheckpointRestartSource(Options()) {}
  explicit CheckpointRestartSource(Options options);

  Status Load() override;
  bool GetNext(WorkloadOp* op) override;
  std::string_view name() const override { return "checkpoint_restart"; }

  /// The Daly interval the source checkpoints at.
  double daly_interval_s() const;

 private:
  const Options options_;
  std::vector<WorkloadOp> ops_;
  size_t next_ = 0;
  bool loaded_ = false;
};

}  // namespace robopt

#endif  // ROBOPT_WORKLOAD_GENERATORS_H_
