#include "workload/plan_serde.h"

#include <utility>
#include <vector>

#include "workload/bytes.h"

namespace robopt {
namespace {

constexpr uint8_t kPlanSerdeVersion = 1;
constexpr size_t kMaxNameLen = 256;

/// Writes one adjacency (per-operator neighbor lists, in stored order).
void WriteAdjacency(ByteWriter* w, const LogicalPlan& plan,
                    bool side) {
  for (OperatorId id = 0; id < plan.num_operators(); ++id) {
    const std::vector<OperatorId>& list =
        side ? plan.side_children(id) : plan.children(id);
    w->U16(static_cast<uint16_t>(list.size()));
    for (OperatorId child : list) w->U16(child);
  }
  for (OperatorId id = 0; id < plan.num_operators(); ++id) {
    const std::vector<OperatorId>& list =
        side ? plan.side_parents(id) : plan.parents(id);
    w->U16(static_cast<uint16_t>(list.size()));
    for (OperatorId parent : list) w->U16(parent);
  }
}

Status ReadLists(ByteReader* r, int num_ops,
                 std::vector<std::vector<OperatorId>>* lists) {
  lists->assign(static_cast<size_t>(num_ops), {});
  for (int id = 0; id < num_ops; ++id) {
    uint16_t count = 0;
    if (!r->U16(&count)) return Status::OutOfRange("truncated adjacency");
    if (count > num_ops * 2) {
      return Status::InvalidArgument("adjacency list longer than the plan");
    }
    (*lists)[id].reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
      uint16_t neighbor = 0;
      if (!r->U16(&neighbor)) return Status::OutOfRange("truncated adjacency");
      if (neighbor >= num_ops) {
        return Status::InvalidArgument("edge endpoint out of range");
      }
      (*lists)[id].push_back(neighbor);
    }
  }
  return Status::OK();
}

/// Replays a Connect()/ConnectBroadcast() sequence consistent with both the
/// recorded children order (per `from`) and parents order (per `to`). Greedy:
/// an edge is emittable when it is the next unconsumed entry of *both* its
/// endpoint lists; a full pass with no progress means the two adjacencies
/// disagree (corrupt input). O(E·V) worst case — plans cap at 256 operators.
Status ReplayEdges(const std::vector<std::vector<OperatorId>>& children,
                   const std::vector<std::vector<OperatorId>>& parents,
                   bool side, LogicalPlan* plan) {
  const int num_ops = static_cast<int>(children.size());
  size_t total = 0, total_parents = 0;
  for (const auto& list : children) total += list.size();
  for (const auto& list : parents) total_parents += list.size();
  if (total != total_parents) {
    return Status::InvalidArgument("children/parents edge counts disagree");
  }
  std::vector<size_t> child_cursor(num_ops, 0), parent_cursor(num_ops, 0);
  size_t emitted = 0;
  while (emitted < total) {
    bool progress = false;
    for (int from = 0; from < num_ops; ++from) {
      while (child_cursor[from] < children[from].size()) {
        const OperatorId to = children[from][child_cursor[from]];
        if (parent_cursor[to] >= parents[to].size() ||
            parents[to][parent_cursor[to]] != from) {
          break;  // `to` expects a different parent first.
        }
        ++child_cursor[from];
        ++parent_cursor[to];
        if (side) {
          plan->ConnectBroadcast(from, to);
        } else {
          plan->Connect(from, to);
        }
        ++emitted;
        progress = true;
      }
    }
    if (!progress) {
      return Status::InvalidArgument(
          "adjacency orders admit no consistent edge sequence");
    }
  }
  return Status::OK();
}

}  // namespace

void SerializePlan(const LogicalPlan& plan, std::string* out) {
  ByteWriter w;
  w.U8(kPlanSerdeVersion);
  w.U16(static_cast<uint16_t>(plan.num_operators()));
  for (const LogicalOperator& op : plan.operators()) {
    w.U8(static_cast<uint8_t>(op.kind));
    w.U8(static_cast<uint8_t>(op.udf));
    w.F64(op.selectivity);
    w.F64(op.source_cardinality);
    w.F64(op.tuple_bytes);
    w.F64(op.param);
    w.I32(op.loop_iterations);
    w.U16(op.loop_begin);
    w.Str(op.name);
    w.Str(op.kernel);
  }
  WriteAdjacency(&w, plan, /*side=*/false);
  WriteAdjacency(&w, plan, /*side=*/true);
  out->append(w.bytes());
}

StatusOr<LogicalPlan> DeserializePlan(std::string_view bytes) {
  ByteReader r(bytes);
  uint8_t version = 0;
  if (!r.U8(&version)) return Status::OutOfRange("truncated plan header");
  if (version != kPlanSerdeVersion) {
    return Status::InvalidArgument("unknown plan encoding version " +
                                   std::to_string(version));
  }
  uint16_t num_ops = 0;
  if (!r.U16(&num_ops)) return Status::OutOfRange("truncated plan header");
  if (num_ops == 0 || num_ops > kMaxPlanOperators) {
    return Status::InvalidArgument("operator count " + std::to_string(num_ops) +
                                   " outside (0, " +
                                   std::to_string(kMaxPlanOperators) + "]");
  }
  LogicalPlan plan;
  for (uint16_t i = 0; i < num_ops; ++i) {
    LogicalOperator op;
    uint8_t kind = 0, udf = 0;
    uint16_t loop_begin = 0;
    if (!r.U8(&kind) || !r.U8(&udf) || !r.F64(&op.selectivity) ||
        !r.F64(&op.source_cardinality) || !r.F64(&op.tuple_bytes) ||
        !r.F64(&op.param) || !r.I32(&op.loop_iterations) ||
        !r.U16(&loop_begin) || !r.Str(&op.name, kMaxNameLen) ||
        !r.Str(&op.kernel, kMaxNameLen)) {
      return Status::OutOfRange("truncated operator " + std::to_string(i));
    }
    if (kind >= static_cast<uint8_t>(LogicalOpKind::kKindCount)) {
      return Status::InvalidArgument("operator kind " + std::to_string(kind) +
                                     " out of range");
    }
    if (udf > static_cast<uint8_t>(UdfComplexity::kSuperQuadratic)) {
      return Status::InvalidArgument("UDF complexity " + std::to_string(udf) +
                                     " out of range");
    }
    if (loop_begin != kInvalidOperatorId && loop_begin >= num_ops) {
      return Status::InvalidArgument("loop_begin out of range");
    }
    if (op.loop_iterations < 0) {
      return Status::InvalidArgument("negative loop iteration count");
    }
    op.kind = static_cast<LogicalOpKind>(kind);
    op.udf = static_cast<UdfComplexity>(udf);
    op.loop_begin = loop_begin;
    plan.Add(std::move(op));
  }
  std::vector<std::vector<OperatorId>> children, parents;
  ROBOPT_RETURN_IF_ERROR(ReadLists(&r, num_ops, &children));
  ROBOPT_RETURN_IF_ERROR(ReadLists(&r, num_ops, &parents));
  ROBOPT_RETURN_IF_ERROR(ReplayEdges(children, parents, /*side=*/false, &plan));
  std::vector<std::vector<OperatorId>> side_children, side_parents;
  ROBOPT_RETURN_IF_ERROR(ReadLists(&r, num_ops, &side_children));
  ROBOPT_RETURN_IF_ERROR(ReadLists(&r, num_ops, &side_parents));
  ROBOPT_RETURN_IF_ERROR(
      ReplayEdges(side_children, side_parents, /*side=*/true, &plan));
  if (!r.Done()) {
    return Status::InvalidArgument("trailing bytes after the plan");
  }
  return plan;
}

void SerializeCards(const Cardinalities& cards, std::string* out) {
  ByteWriter w;
  w.U16(static_cast<uint16_t>(cards.input.size()));
  for (double v : cards.input) w.F64(v);
  w.U16(static_cast<uint16_t>(cards.output.size()));
  for (double v : cards.output) w.F64(v);
  out->append(w.bytes());
}

StatusOr<Cardinalities> DeserializeCards(std::string_view bytes,
                                         int num_operators) {
  ByteReader r(bytes);
  Cardinalities cards;
  for (std::vector<double>* column : {&cards.input, &cards.output}) {
    uint16_t n = 0;
    if (!r.U16(&n)) return Status::OutOfRange("truncated cardinalities");
    if (n > num_operators) {
      return Status::InvalidArgument(
          "cardinality vector longer than the plan");
    }
    column->resize(n);
    for (uint16_t i = 0; i < n; ++i) {
      if (!r.F64(&(*column)[i])) {
        return Status::OutOfRange("truncated cardinalities");
      }
    }
  }
  if (!r.Done()) {
    return Status::InvalidArgument("trailing bytes after cardinalities");
  }
  return cards;
}

}  // namespace robopt
