#include "workload/trace_replay.h"

#include <cstring>
#include <utility>

#include "workload/plan_serde.h"
#include "workload/trace_format.h"
#include "workload/trace_records.h"

namespace robopt {
namespace {

std::string FingerprintKey(uint64_t lo, uint64_t hi) {
  std::string key(16, '\0');
  std::memcpy(key.data(), &lo, 8);
  std::memcpy(key.data() + 8, &hi, 8);
  return key;
}

}  // namespace

Status TraceReplaySource::Load() {
  if (loaded_) return Status::OK();
  auto reader = TraceFileReader::Open(path_);
  if (!reader.ok()) return reader.status();

  std::string payload;
  for (;;) {
    Status st = (*reader)->Next(&payload);
    if (st.code() == StatusCode::kNotFound) break;  // Clean end of stream.
    ROBOPT_RETURN_IF_ERROR(st);
    if (payload.empty()) return Status::InvalidArgument("empty trace record");
    switch (static_cast<TraceRecordType>(payload[0])) {
      case TraceRecordType::kPlanDef: {
        auto def = DecodePlanDef(payload);
        if (!def.ok()) return def.status();
        auto plan = DeserializePlan(def->plan_bytes);
        if (!plan.ok()) return plan.status();
        // Duplicate defs are legal (concurrent recorders may race one);
        // the fingerprint pins the content, so last-wins is a no-op.
        plans_[FingerprintKey(def->fp_lo, def->fp_hi)] =
            std::move(plan).value();
        break;
      }
      case TraceRecordType::kOptimize: {
        auto rec = DecodeOptimizeRecord(payload);
        if (!rec.ok()) return rec.status();
        auto it = plans_.find(FingerprintKey(rec->fp_lo, rec->fp_hi));
        if (it == plans_.end()) {
          return Status::InvalidArgument(
              "optimize record references an undefined plan");
        }
        WorkloadOp op;
        op.kind = WorkloadOpKind::kOptimize;
        op.tenant = rec->tenant;
        op.arrival_s = static_cast<double>(rec->rel_ns) * 1e-9;
        op.plan = it->second;
        if (rec->has_cards) {
          auto cards =
              DeserializeCards(rec->cards_bytes, op.plan.num_operators());
          if (!cards.ok()) return cards.status();
          op.has_cards = true;
          op.cards = std::move(cards).value();
        }
        op.recorded.valid = true;
        op.recorded.status = static_cast<StatusCode>(rec->status_code);
        op.recorded.cache_hit = rec->cache_hit;
        op.recorded.predicted_runtime_s = rec->predicted_runtime_s;
        op.recorded.model_version = rec->model_version;
        op.recorded.chosen_platform = rec->chosen_platform;
        op.recorded.assignment = std::move(rec->assignment);
        op.recorded.options_hash = rec->options_hash;
        ops_.push_back(std::move(op));
        break;
      }
      case TraceRecordType::kFeedback: {
        auto rec = DecodeFeedbackRecord(payload);
        if (!rec.ok()) return rec.status();
        auto it = plans_.find(FingerprintKey(rec->fp_lo, rec->fp_hi));
        if (it == plans_.end()) {
          return Status::InvalidArgument(
              "feedback record references an undefined plan");
        }
        WorkloadOp op;
        op.kind = WorkloadOpKind::kFeedback;
        op.tenant = rec->tenant;
        op.arrival_s = static_cast<double>(rec->rel_ns) * 1e-9;
        op.plan = it->second;
        if (static_cast<int>(rec->assignment.size()) !=
            op.plan.num_operators()) {
          return Status::InvalidArgument(
              "feedback assignment length does not match its plan");
        }
        op.assignment = std::move(rec->assignment);
        op.actual_runtime_s = rec->actual_runtime_s;
        auto cards =
            DeserializeCards(rec->cards_bytes, op.plan.num_operators());
        if (!cards.ok()) return cards.status();
        op.has_cards = true;
        op.cards = std::move(cards).value();
        ops_.push_back(std::move(op));
        break;
      }
      default:
        return Status::InvalidArgument(
            "unknown trace record type " +
            std::to_string(static_cast<int>(payload[0])));
    }
  }
  loaded_ = true;
  return Status::OK();
}

bool TraceReplaySource::GetNext(WorkloadOp* op) {
  if (!loaded_ || next_ >= ops_.size()) return false;
  *op = ops_[next_++];
  CountOp(options_, op);
  return true;
}

}  // namespace robopt
