#include "workload/trace_recorder.h"

#include <cstdio>
#include <cstring>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "plan/fingerprint.h"
#include "workload/plan_serde.h"
#include "workload/trace_records.h"

namespace robopt {
namespace {

std::string FingerprintKey(const PlanFingerprint& fp) {
  std::string key(16, '\0');
  std::memcpy(key.data(), &fp.lo, 8);
  std::memcpy(key.data() + 8, &fp.hi, 8);
  return key;
}

uint64_t WallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceRecorder::TraceRecorder(std::string path, TraceRecorderOptions options)
    : final_path_(std::move(path)),
      tmp_path_(final_path_ + ".tmp"),
      options_(options),
      open_steady_(std::chrono::steady_clock::now()) {}

StatusOr<std::unique_ptr<TraceRecorder>> TraceRecorder::Open(
    const std::string& path, TraceRecorderOptions options) {
  auto recorder =
      std::unique_ptr<TraceRecorder>(new TraceRecorder(path, options));
  auto writer = TraceFileWriter::Open(recorder->tmp_path_);
  if (!writer.ok()) return writer.status();
  recorder->writer_ = std::move(writer).value();
  ROBOPT_RETURN_IF_ERROR(
      WriteTraceHeader(recorder->writer_.get(), WallNowNs()));
  recorder->writer_thread_ =
      std::thread(&TraceRecorder::WriterLoop, recorder.get());
  return recorder;
}

TraceRecorder::~TraceRecorder() { Close(); }

void TraceRecorder::OnRequest(const ServedRequest& request) {
  if (request.plan == nullptr) return;
  const auto now = std::chrono::steady_clock::now();

  TraceOptimizeRecord rec;
  rec.sequence = sequence_.fetch_add(1, std::memory_order_relaxed);
  rec.tenant = request.tenant;
  rec.wall_ns = WallNowNs();
  rec.rel_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - open_steady_)
          .count());
  // The serving path usually already fingerprinted the plan (routing or
  // cache key) and handed it over; only recompute when it could not.
  PlanFingerprint fp;
  fp.lo = request.fp_lo;
  fp.hi = request.fp_hi;
  if (fp.lo == 0 && fp.hi == 0) fp = FingerprintPlan(*request.plan);
  rec.fp_hi = fp.hi;
  rec.fp_lo = fp.lo;
  rec.options_hash = request.options_hash;
  rec.status_code = static_cast<uint8_t>(request.status);
  rec.cache_hit = request.cache_hit;
  rec.predicted_runtime_s = request.predicted_runtime_s;
  rec.model_version = request.model_version;
  rec.chosen_platform = request.chosen_platform;
  if (request.optimized != nullptr) {
    const int n = request.plan->num_operators();
    rec.assignment.resize(n);
    for (int id = 0; id < n; ++id) {
      rec.assignment[static_cast<size_t>(id)] =
          static_cast<int16_t>(request.optimized->alt_index(
              static_cast<OperatorId>(id)));
    }
  }
  if (request.cards != nullptr) {
    rec.has_cards = true;
    SerializeCards(*request.cards, &rec.cards_bytes);
  }

  MaybeDefineAndEnqueue(fp, *request.plan, EncodeOptimizeRecord(rec));
}

void TraceRecorder::OnFeedback(const ExecutionPlan& plan,
                               const ExecResult& result) {
  if (!options_.record_feedback) return;
  const LogicalPlan& logical = plan.logical_plan();
  const auto now = std::chrono::steady_clock::now();

  TraceFeedbackRecord rec;
  rec.rel_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - open_steady_)
          .count());
  const PlanFingerprint fp = FingerprintPlan(logical);
  rec.fp_hi = fp.hi;
  rec.fp_lo = fp.lo;
  rec.actual_runtime_s = result.cost.total_s;
  const int n = logical.num_operators();
  rec.assignment.resize(n);
  for (int id = 0; id < n; ++id) {
    rec.assignment[static_cast<size_t>(id)] =
        static_cast<int16_t>(plan.alt_index(static_cast<OperatorId>(id)));
  }
  SerializeCards(result.observed, &rec.cards_bytes);
  MaybeDefineAndEnqueue(fp, logical, EncodeFeedbackRecord(rec));
}

void TraceRecorder::MaybeDefineAndEnqueue(const PlanFingerprint& fp,
                                          const LogicalPlan& plan,
                                          std::string record) {
  const std::string key = FingerprintKey(fp);
  // Fast path: plan already defined, only the record rides — one lock
  // acquisition on the hot serving path.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (seen_plans_.find(key) != seen_plans_.end()) {
      if (closed_ || queue_.size() + 1 > options_.queue_capacity) {
        records_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // No notify: the writer polls on a short timed wait, so the hot
      // serving path never pays a futex wake (or, single-core, a forced
      // context switch into the writer) per request.
      queue_.push_back(std::move(record));
      return;
    }
  }
  // Serialize the plan def outside the lock (O(plan) work); re-checked
  // below in case another thread defined it meanwhile.
  std::string plan_def;
  {
    TracePlanDef def;
    def.fp_hi = fp.hi;
    def.fp_lo = fp.lo;
    SerializePlan(plan, &def.plan_bytes);
    plan_def = EncodePlanDef(def);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!plan_def.empty() &&
        seen_plans_.find(key) != seen_plans_.end()) {
      plan_def.clear();  // Another thread defined it meanwhile.
    }
    const size_t need = plan_def.empty() ? 1 : 2;
    if (closed_ || queue_.size() + need > options_.queue_capacity) {
      // Shed the whole event. The fingerprint only becomes "seen" once its
      // def is really queued, so no record on disk ever references an
      // undefined plan.
      records_dropped_.fetch_add(need, std::memory_order_relaxed);
      return;
    }
    if (!plan_def.empty()) {
      seen_plans_.insert(key);
      plan_defs_.fetch_add(1, std::memory_order_relaxed);
      queue_.push_back(std::move(plan_def));
    }
    queue_.push_back(std::move(record));
  }
}

void TraceRecorder::WriterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Timed wait instead of per-record notification: producers only ever
    // push and return, and this thread drains whatever accumulated every
    // couple of milliseconds (immediately on Close's notify).
    cv_.wait_for(lock, std::chrono::milliseconds(2),
                 [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (closed_) return;
      continue;
    }
    std::deque<std::string> batch;
    batch.swap(queue_);
    lock.unlock();
    for (const std::string& payload : batch) {
      Status st = writer_->Append(payload);
      if (st.ok()) {
        records_written_.fetch_add(1, std::memory_order_relaxed);
        bytes_written_.store(writer_->bytes_written(),
                             std::memory_order_relaxed);
      } else {
        lock.lock();
        if (first_error_.ok()) first_error_ = st;
        lock.unlock();
      }
    }
    lock.lock();
  }
}

Status TraceRecorder::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ && !writer_thread_.joinable()) return first_error_;
    closed_ = true;
  }
  cv_.notify_all();
  if (writer_thread_.joinable()) writer_thread_.join();
  Status close_status = writer_->Close();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_error_.ok() && !close_status.ok()) first_error_ = close_status;
    if (!first_error_.ok()) {
      std::remove(tmp_path_.c_str());
      return first_error_;
    }
  }
  // Durable publish: data is fsynced (TraceFileWriter::Close), now rename
  // and persist the directory entry — the RandomForest::Save idiom.
  if (std::rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    Status st = Status::Internal("cannot rename " + tmp_path_ + " into " +
                                 final_path_);
    std::lock_guard<std::mutex> lock(mu_);
    first_error_ = st;
    return st;
  }
#ifndef _WIN32
  const size_t slash = final_path_.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : slash == 0 ? std::string("/")
                                           : final_path_.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
#endif
  return Status::OK();
}

TraceRecorderStats TraceRecorder::Stats() const {
  TraceRecorderStats stats;
  stats.records_written = records_written_.load(std::memory_order_relaxed);
  stats.records_dropped = records_dropped_.load(std::memory_order_relaxed);
  stats.plan_defs = plan_defs_.load(std::memory_order_relaxed);
  stats.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  return stats;
}

void TraceRecorder::ExportTo(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  const TraceRecorderStats stats = Stats();
  registry->Set("robopt_trace_records_written_total",
                static_cast<double>(stats.records_written));
  registry->Set("robopt_trace_records_dropped_total",
                static_cast<double>(stats.records_dropped));
  registry->Set("robopt_trace_plan_defs_total",
                static_cast<double>(stats.plan_defs));
  registry->Set("robopt_trace_bytes_written_total",
                static_cast<double>(stats.bytes_written));
}

}  // namespace robopt
