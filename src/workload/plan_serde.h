#ifndef ROBOPT_WORKLOAD_PLAN_SERDE_H_
#define ROBOPT_WORKLOAD_PLAN_SERDE_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "plan/cardinality.h"
#include "plan/logical_plan.h"

namespace robopt {

/// Compact binary serialization of logical plans for the trace log.
///
/// The encoding preserves the plan *exactly*: operator fields byte-for-byte
/// and — crucially — the per-operator order of both adjacency lists.
/// Children order steers the topological order and hence the enumeration
/// order, so a deserialized plan must optimize bit-identically to the
/// original; serializing only one side of the adjacency would let the
/// rebuild permute the other. DeserializePlan therefore replays a Connect()
/// sequence consistent with both recorded orders (such a sequence always
/// exists — the original Connect calls are a witness — and any consistent
/// interleaving rebuilds identical adjacency arrays).
void SerializePlan(const LogicalPlan& plan, std::string* out);

/// Rebuilds a plan from SerializePlan bytes. Every field is bounds-checked
/// (operator count against kMaxPlanOperators, enum values against their
/// sentinels, edge endpoints against the operator count, string lengths
/// against the buffer) and violations surface as InvalidArgument /
/// OutOfRange — corrupt input can reject, never crash.
StatusOr<LogicalPlan> DeserializePlan(std::string_view bytes);

/// Cardinalities ride next to the plan in optimize/feedback records.
void SerializeCards(const Cardinalities& cards, std::string* out);

/// `num_operators` bounds the vector sizes (a cards block must describe
/// exactly the plan it was recorded with).
StatusOr<Cardinalities> DeserializeCards(std::string_view bytes,
                                         int num_operators);

}  // namespace robopt

#endif  // ROBOPT_WORKLOAD_PLAN_SERDE_H_
