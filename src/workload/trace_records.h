#ifndef ROBOPT_WORKLOAD_TRACE_RECORDS_H_
#define ROBOPT_WORKLOAD_TRACE_RECORDS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "workload/trace_format.h"

namespace robopt {

/// In-memory forms of the three trace record payloads. These are
/// serve-agnostic: the recorder converts a ServedRequest into one of these,
/// the replayer converts them back into service calls. Plans and
/// cardinalities ride as nested byte strings (see plan_serde.h) so this
/// layer stays a pure container.

struct TracePlanDef {
  uint64_t fp_hi = 0;
  uint64_t fp_lo = 0;
  std::string plan_bytes;
};

struct TraceOptimizeRecord {
  uint64_t sequence = 0;
  uint64_t tenant = 0;
  /// Wall-clock nanoseconds at serve time (diagnostics only).
  uint64_t wall_ns = 0;
  /// Nanoseconds since the recorder opened — the replay pacing clock.
  uint64_t rel_ns = 0;
  uint64_t fp_hi = 0;
  uint64_t fp_lo = 0;
  /// Hash of the OptimizeOptions the request ran under; replay verifies it
  /// re-drives with the same knobs.
  uint64_t options_hash = 0;
  /// Outcome, for bit-identity verification on replay.
  uint8_t status_code = 0;
  bool cache_hit = false;
  float predicted_runtime_s = 0.0f;
  uint64_t model_version = 0;
  uint8_t chosen_platform = 0;
  std::vector<int16_t> assignment;
  bool has_cards = false;
  std::string cards_bytes;
};

struct TraceFeedbackRecord {
  uint64_t tenant = 0;
  uint64_t rel_ns = 0;
  uint64_t fp_hi = 0;
  uint64_t fp_lo = 0;
  double actual_runtime_s = 0.0;
  std::vector<int16_t> assignment;
  std::string cards_bytes;
};

/// Each Encode* prepends the matching TraceRecordType byte, ready for
/// TraceFileWriter::Append.
std::string EncodePlanDef(const TracePlanDef& rec);
std::string EncodeOptimizeRecord(const TraceOptimizeRecord& rec);
std::string EncodeFeedbackRecord(const TraceFeedbackRecord& rec);

/// Decoders expect the full payload (type byte included) and verify it.
/// Every length is bounds-checked; malformed payloads return
/// InvalidArgument/OutOfRange.
StatusOr<TracePlanDef> DecodePlanDef(std::string_view payload);
StatusOr<TraceOptimizeRecord> DecodeOptimizeRecord(std::string_view payload);
StatusOr<TraceFeedbackRecord> DecodeFeedbackRecord(std::string_view payload);

}  // namespace robopt

#endif  // ROBOPT_WORKLOAD_TRACE_RECORDS_H_
