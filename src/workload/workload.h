#ifndef ROBOPT_WORKLOAD_WORKLOAD_H_
#define ROBOPT_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "plan/cardinality.h"
#include "plan/logical_plan.h"

namespace robopt {

/// The pluggable workload layer: every traffic shape the serving stack can
/// be driven by — the paper's Table-II suite, synthetic plan streams,
/// open-loop arrival processes, long checkpoint/restart jobs, and recorded
/// production traces — speaks one pull interface, WorkloadSource, in the
/// style of the CODES workload API (load() / get_next() over a stream of
/// timestamped ops). Drivers (benches, soak tests, the replay engine) pull
/// ops one at a time and never know which generator is behind the stream.

/// What one workload op asks the driver to do.
enum class WorkloadOpKind : uint8_t {
  /// Optimize `plan` (with `cards` when has_cards) as tenant `tenant`.
  kOptimize = 0,
  /// Report an observed execution back into the serving feedback loop:
  /// the plan ran with `assignment` and took `actual_runtime_s`.
  kFeedback = 1,
};

/// Outcome a trace recorded for an op — replay verifies against it.
/// `valid` is false on generator-produced (non-replay) streams.
struct RecordedOutcome {
  bool valid = false;
  StatusCode status = StatusCode::kOk;
  bool cache_hit = false;
  float predicted_runtime_s = 0.0f;
  uint64_t model_version = 0;
  uint8_t chosen_platform = 0;
  /// Hash of the OptimizeOptions the recorded call ran under.
  uint64_t options_hash = 0;
  /// Per-operator execution alternative, indexed by OperatorId (-1 =
  /// unassigned). Empty when the recorded call failed or was shed.
  std::vector<int16_t> assignment;
};

/// One element of a workload stream. Ops are yielded in non-decreasing
/// `arrival_s` order; the driver decides how literally to honor the
/// timestamps (see DriveOptions::speedup).
struct WorkloadOp {
  WorkloadOpKind kind = WorkloadOpKind::kOptimize;
  /// Position in the stream (0-based, assigned by the source).
  uint64_t sequence = 0;
  uint64_t tenant = 0;
  /// Stream-relative arrival time in seconds (virtual for generators, the
  /// recorded steady-clock offset for traces).
  double arrival_s = 0.0;
  LogicalPlan plan;
  bool has_cards = false;
  Cardinalities cards;
  /// kFeedback only: measured runtime and the executed assignment.
  double actual_runtime_s = 0.0;
  std::vector<int16_t> assignment;
  /// Replay streams only: the recorded outcome to verify against.
  RecordedOutcome recorded;
};

/// Options shared by every generator. One seed makes the whole stream —
/// plans, tenants, arrival times — byte-identical across runs and thread
/// counts (generators are pull-driven and never consult global state).
struct WorkloadOptions {
  uint64_t seed = 42;
  /// Stream length in ops (generators always terminate; 0 picks the
  /// generator's default).
  size_t max_ops = 256;
  /// Tenant population and the Zipf exponent of the traffic share — s > 1
  /// gives the heavy-tailed multi-tenant mixes where a few tenants dominate.
  int num_tenants = 16;
  double tenant_zipf_s = 1.2;
  /// Per-generator op counters (robopt_workload_ops_total{source="..."}) are
  /// bumped here when set; the yielded ops are byte-identical either way.
  MetricsRegistry* metrics = nullptr;
};

/// A pull-based stream of workload ops. Contract:
///   - Load() must be called once, before the first GetNext(); it does the
///     expensive preparation (building plan pools, reading trace files) and
///     surfaces failures as Status instead of dying mid-stream;
///   - GetNext() fills `op` and returns true, or returns false at end of
///     stream (repeatable: keeps returning false);
///   - sources are single-consumer and not thread-safe; drivers that fan
///     ops out to threads own the synchronization.
class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;

  virtual Status Load() = 0;
  virtual bool GetNext(WorkloadOp* op) = 0;

  /// Stable generator name — the `source` label of the per-generator op
  /// counters and the prefix of log lines.
  virtual std::string_view name() const = 0;

 protected:
  /// Stamps sequence, bumps the per-generator counter. Sources call this on
  /// every op they yield.
  void CountOp(const WorkloadOptions& options, WorkloadOp* op);

 private:
  uint64_t next_sequence_ = 0;
  Counter* ops_counter_ = nullptr;  ///< Cached metrics series (or null).
  bool counter_resolved_ = false;
};

}  // namespace robopt

#endif  // ROBOPT_WORKLOAD_WORKLOAD_H_
