#ifndef ROBOPT_WORKLOAD_DRIVER_H_
#define ROBOPT_WORKLOAD_DRIVER_H_

#include <cstdint>

#include "common/status.h"
#include "serve/optimizer_service.h"
#include "workload/workload.h"

namespace robopt {

/// How DriveWorkload paces and checks a stream.
struct DriveOptions {
  /// Time warp: 0 replays as fast as possible (no pacing at all); 1.0
  /// honors the stream's arrival timestamps in real time; s > 1 compresses
  /// them s-fold (2.0 = twice as fast as recorded).
  double speedup = 0.0;
  /// Verify each optimize against the op's RecordedOutcome (replay streams
  /// only): served assignment, predicted cost and model version must match
  /// byte-for-byte. Mismatches are counted, never fatal.
  bool verify = false;
  /// Optimize options passed on every call; HashOptions of this is checked
  /// against each record's options_hash when verifying.
  OptimizeOptions optimize;
  /// Needed to rebuild ExecutionPlans for feedback ops; feedback ops are
  /// skipped (and counted) when null.
  const PlatformRegistry* registry = nullptr;
  /// Replay-lag histogram + op counters land here when set.
  MetricsRegistry* metrics = nullptr;
  /// Re-evaluate the service's SLO burn every this many ops (0 = never),
  /// so a replayed degradation trips admission tightening mid-drive at a
  /// deterministic cadence instead of waiting on the background worker's
  /// wall-clock poll. No-op when the service's SLO engine is off.
  uint64_t slo_every = 0;
};

/// What one DriveWorkload run did.
struct ReplayStats {
  uint64_t optimizes = 0;         ///< Optimize ops attempted.
  uint64_t optimize_errors = 0;   ///< Non-OK Optimize (sheds included).
  uint64_t feedbacks = 0;         ///< Feedback ops applied.
  uint64_t feedbacks_skipped = 0; ///< No registry / unusable assignment.
  uint64_t verified = 0;          ///< Optimizes checked against a recording.
  uint64_t mismatches = 0;        ///< Verified ops that did not reproduce.
  uint64_t options_hash_mismatches = 0;
  double wall_s = 0.0;
  double max_lag_s = 0.0;  ///< Worst pacing lag (0 when speedup == 0).
  uint64_t slo_evaluations = 0;  ///< Mid-drive SLO evaluations triggered.
  /// Worst aggregate SLO health seen at any mid-drive evaluation (the final
  /// state may have recovered; this remembers the trip).
  SloHealth worst_slo_health = SloHealth::kOk;
  /// Health after the last evaluation (kOk when slo_every == 0).
  SloHealth final_slo_health = SloHealth::kOk;
};

/// Pulls `source` to exhaustion and drives every op into `service` — the
/// one driver behind replay, benches and soak tests. Single-threaded by
/// contract (sources are single-consumer); in sharded services the shards
/// still fan out by (tenant, fingerprint). The source must already be
/// Load()ed.
ReplayStats DriveWorkload(OptimizerService* service, WorkloadSource* source,
                          const DriveOptions& options = {});

}  // namespace robopt

#endif  // ROBOPT_WORKLOAD_DRIVER_H_
