#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "plan/cardinality.h"
#include "workloads/queries.h"
#include "workloads/synthetic.h"

namespace robopt {
namespace {

/// Noisy observed cardinalities: the propagated estimate with lognormal
/// perturbation, the shape real execution logs have.
Cardinalities NoisyCards(const LogicalPlan& plan, Rng* rng, double sigma) {
  Cardinalities cards = CardinalityEstimator(&plan).Estimate();
  for (std::vector<double>* column : {&cards.input, &cards.output}) {
    for (double& v : *column) {
      v = std::max(1.0, v * std::exp(sigma * rng->NextGaussian()));
    }
  }
  return cards;
}

/// Stable arrival-order sort: ties resolve by generation order, so the
/// stream is deterministic even when arrivals collide.
void SortByArrival(std::vector<WorkloadOp>* ops) {
  std::stable_sort(ops->begin(), ops->end(),
                   [](const WorkloadOp& a, const WorkloadOp& b) {
                     return a.arrival_s < b.arrival_s;
                   });
}

}  // namespace

std::vector<LogicalPlan> MakePaperPlanPool(double scale_gb) {
  RegisterWorkloadKernels();
  const double scale_mb = scale_gb * 1024.0;
  std::vector<LogicalPlan> pool;
  pool.push_back(MakeWordCountPlan(scale_gb));
  pool.push_back(MakeWord2NVecPlan(scale_mb));
  pool.push_back(MakeSimWordsPlan(scale_mb));
  pool.push_back(MakeTpchQ1Plan(scale_gb));
  pool.push_back(MakeTpchQ3Plan(scale_gb));
  pool.push_back(MakeAggregatePlan(scale_gb));
  pool.push_back(MakeJoinPlan(scale_gb));
  pool.push_back(MakeKmeansPlan(scale_mb, /*num_centroids=*/8,
                                /*iterations=*/5));
  pool.push_back(MakeSgdPlan(scale_gb, /*batch_size=*/64, /*iterations=*/5));
  pool.push_back(MakeCrocoPrPlan(scale_gb, /*iterations=*/5));
  return pool;
}

std::vector<LogicalPlan> MakeSyntheticPlanPool(int count, uint64_t seed) {
  std::vector<LogicalPlan> pool;
  pool.reserve(static_cast<size_t>(count));
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    const double cardinality = std::pow(10.0, rng.NextUniform(4.0, 7.0));
    const uint64_t plan_seed = rng.Next();
    switch (i % 3) {
      case 0:
        pool.push_back(MakeSyntheticPipeline(
            static_cast<int>(rng.NextInt(5, 12)), cardinality, plan_seed));
        break;
      case 1:
        pool.push_back(MakeSyntheticJoinTree(
            static_cast<int>(rng.NextInt(2, 4)), cardinality, plan_seed));
        break;
      default:
        pool.push_back(MakeSyntheticLoopPlan(
            static_cast<int>(rng.NextInt(9, 12)), cardinality,
            static_cast<int>(rng.NextInt(3, 8)), plan_seed));
        break;
    }
  }
  return pool;
}

OpenLoopSource::OpenLoopSource(PlanPool pool, GeneratorOptions options)
    : pool_kind_(pool), options_(std::move(options)) {
  switch (pool_kind_) {
    case PlanPool::kPaper:
      name_ = "open_loop_paper";
      break;
    case PlanPool::kSynthetic:
      name_ = "open_loop_synthetic";
      break;
    case PlanPool::kMixed:
      name_ = "open_loop_mixed";
      break;
  }
}

Status OpenLoopSource::Load() {
  if (loaded_) return Status::OK();
  std::vector<LogicalPlan> pool;
  if (pool_kind_ != PlanPool::kSynthetic) {
    pool = MakePaperPlanPool(options_.paper_scale_gb);
  }
  if (pool_kind_ != PlanPool::kPaper) {
    std::vector<LogicalPlan> synthetic = MakeSyntheticPlanPool(
        options_.synthetic_pool_size, options_.base.seed ^ 0x5eedULL);
    for (LogicalPlan& plan : synthetic) pool.push_back(std::move(plan));
  }
  if (pool.empty()) return Status::Internal("empty plan pool");
  if (options_.base.num_tenants <= 0) {
    return Status::InvalidArgument("num_tenants must be positive");
  }

  const size_t total =
      options_.base.max_ops == 0 ? 256 : options_.base.max_ops;
  Rng rng(options_.base.seed);
  ArrivalProcess arrival(options_.arrival, options_.base.seed ^ 0x9e3779b9u);
  ops_.reserve(total);
  while (ops_.size() < total) {
    WorkloadOp op;
    op.kind = WorkloadOpKind::kOptimize;
    op.arrival_s = arrival.Next();
    op.tenant =
        rng.NextZipf(static_cast<uint64_t>(options_.base.num_tenants),
                     options_.base.tenant_zipf_s) -
        1;
    // Tenant affinity: each tenant owns two home plans (a deterministic
    // function of its id); most of its traffic re-issues those.
    size_t index;
    if (rng.NextBernoulli(options_.tenant_affinity)) {
      const uint64_t home = op.tenant * 2654435761u + rng.NextBounded(2);
      index = static_cast<size_t>(home % pool.size());
    } else {
      index = static_cast<size_t>(rng.NextBounded(pool.size()));
    }
    op.plan = pool[index];
    if (rng.NextBernoulli(options_.cards_fraction)) {
      op.has_cards = true;
      op.cards = NoisyCards(op.plan, &rng, /*sigma=*/0.2);
    }
    const uint64_t optimize_tenant = op.tenant;
    const double optimize_arrival = op.arrival_s;
    const LogicalPlan& optimize_plan = op.plan;
    ops_.push_back(op);

    if (ops_.size() < total &&
        rng.NextBernoulli(options_.feedback_fraction)) {
      WorkloadOp feedback;
      feedback.kind = WorkloadOpKind::kFeedback;
      feedback.tenant = optimize_tenant;
      // The execution "finishes" a service-delay later.
      feedback.arrival_s = optimize_arrival + rng.NextUniform(0.05, 0.5);
      feedback.plan = optimize_plan;
      feedback.actual_runtime_s =
          std::exp(rng.NextGaussian() * 0.5) * 10.0;  // Lognormal runtimes.
      feedback.has_cards = true;
      feedback.cards = NoisyCards(feedback.plan, &rng, /*sigma=*/0.3);
      // assignment left empty: the driver applies the feedback to the
      // tenant's last served plan.
      ops_.push_back(std::move(feedback));
    }
  }
  SortByArrival(&ops_);
  loaded_ = true;
  return Status::OK();
}

bool OpenLoopSource::GetNext(WorkloadOp* op) {
  if (!loaded_ || next_ >= ops_.size()) return false;
  *op = ops_[next_++];
  CountOp(options_.base, op);
  return true;
}

CheckpointRestartSource::CheckpointRestartSource(Options options)
    : options_(std::move(options)) {}

double CheckpointRestartSource::daly_interval_s() const {
  const double tau =
      std::sqrt(2.0 * options_.checkpoint_cost_s * options_.mtbf_s);
  return std::min(tau, options_.job_work_s);
}

Status CheckpointRestartSource::Load() {
  if (loaded_) return Status::OK();
  if (options_.mtbf_s <= 0.0 || options_.checkpoint_cost_s < 0.0 ||
      options_.job_work_s <= 0.0) {
    return Status::InvalidArgument(
        "checkpoint/restart parameters must be positive");
  }
  const size_t total =
      options_.base.max_ops == 0 ? 256 : options_.base.max_ops;
  const double tau = daly_interval_s();
  Rng rng(options_.base.seed);
  double submit_s = 0.0;
  uint64_t job = 0;
  ops_.reserve(total);
  while (ops_.size() < total) {
    // Poisson job submissions.
    double u = rng.NextDouble();
    if (u < 1e-300) u = 1e-300;
    submit_s += -std::log(u) / options_.job_rate_per_s;
    const uint64_t tenant =
        job % static_cast<uint64_t>(std::max(1, options_.base.num_tenants));

    WorkloadOp optimize;
    optimize.kind = WorkloadOpKind::kOptimize;
    optimize.tenant = tenant;
    optimize.arrival_s = submit_s;
    optimize.plan = MakeSyntheticLoopPlan(
        /*num_ops=*/10, /*source_cardinality=*/1e6,
        options_.loop_iterations, options_.base.seed ^ (job * 0x9e3779b9u));
    const LogicalPlan job_plan = optimize.plan;
    ops_.push_back(std::move(optimize));

    // Run the job segment by segment: tau of work, then a checkpoint
    // write. A failure inside a segment loses the progress since the last
    // checkpoint (plus the time until the failure) and the segment
    // restarts — the Daly rework model.
    double clock_s = submit_s;
    double done_s = 0.0;
    double next_failure_s = rng.NextDouble();
    next_failure_s = -std::log(next_failure_s < 1e-300 ? 1e-300
                                                       : next_failure_s) *
                     options_.mtbf_s;
    while (done_s < options_.job_work_s && ops_.size() < total) {
      const double segment = std::min(tau, options_.job_work_s - done_s);
      double segment_wall = segment + options_.checkpoint_cost_s;
      double attempt_elapsed = 0.0;
      // Failures during this segment: each costs the elapsed attempt time
      // and restarts the attempt from the checkpoint.
      while (next_failure_s < segment_wall - attempt_elapsed) {
        attempt_elapsed += next_failure_s;
        segment_wall += next_failure_s;  // Rework.
        double uf = rng.NextDouble();
        next_failure_s =
            -std::log(uf < 1e-300 ? 1e-300 : uf) * options_.mtbf_s;
        attempt_elapsed = 0.0;
      }
      next_failure_s -= segment + options_.checkpoint_cost_s;
      clock_s += segment_wall;
      done_s += segment;

      WorkloadOp feedback;
      feedback.kind = WorkloadOpKind::kFeedback;
      feedback.tenant = tenant;
      feedback.arrival_s = clock_s;
      feedback.plan = job_plan;
      feedback.actual_runtime_s = segment_wall;
      feedback.has_cards = true;
      feedback.cards = NoisyCards(feedback.plan, &rng, /*sigma=*/0.1);
      ops_.push_back(std::move(feedback));
    }
    ++job;
  }
  SortByArrival(&ops_);
  loaded_ = true;
  return Status::OK();
}

bool CheckpointRestartSource::GetNext(WorkloadOp* op) {
  if (!loaded_ || next_ >= ops_.size()) return false;
  *op = ops_[next_++];
  CountOp(options_.base, op);
  return true;
}

}  // namespace robopt
