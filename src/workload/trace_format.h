#ifndef ROBOPT_WORKLOAD_TRACE_FORMAT_H_
#define ROBOPT_WORKLOAD_TRACE_FORMAT_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace robopt {

/// On-disk production trace format (see DESIGN.md, "Workload API & trace
/// replay"). Layout:
///
///   header:  magic "RBTRACE\0" (8) | u32 version | u32 flags
///            | u64 created_wall_ns | u32 header_crc
///   record:  u32 payload_len | u32 payload_crc | payload bytes
///
/// Records are length-prefixed and individually CRC-framed, so a torn tail
/// (crash mid-write) is detected at the exact record boundary and corrupt
/// bytes anywhere surface as a structured Status, never a crash. Payloads
/// start with a one-byte record type.

inline constexpr char kTraceMagic[8] = {'R', 'B', 'T', 'R', 'A', 'C', 'E', 0};
inline constexpr uint32_t kTraceVersion = 1;
/// Sanity bound on one record: a 256-operator plan with maximal strings is
/// well under this; anything larger is corruption, not data.
inline constexpr uint32_t kMaxTracePayload = 1u << 22;

/// Record types (first payload byte).
enum class TraceRecordType : uint8_t {
  /// Defines a plan once per canonical fingerprint: fp_hi, fp_lo, plan
  /// bytes. Later records reference the fingerprint instead of re-carrying
  /// the plan — repeat traffic costs ~100 bytes per record, not a plan copy.
  kPlanDef = 0,
  /// One served optimize request (tenant, fingerprint, options hash,
  /// injected cardinalities, outcome, wall/stream timestamps).
  kOptimize = 1,
  /// One observed execution (fingerprint, executed assignment, observed
  /// cardinalities, measured runtime).
  kFeedback = 2,
};

/// CRC-32 (IEEE 802.3, reflected) over `data`. Used for both the header and
/// every record payload.
uint32_t Crc32(std::string_view data);

/// Low-level framed writer. Not thread-safe — TraceRecorder owns the
/// serialization discipline. Writes to `path` directly (the recorder points
/// it at a .tmp sibling and renames on close).
class TraceFileWriter {
 public:
  static StatusOr<std::unique_ptr<TraceFileWriter>> Open(
      const std::string& path);
  ~TraceFileWriter();

  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  /// Appends one CRC-framed record. `payload` must start with the record
  /// type byte.
  Status Append(std::string_view payload);

  /// Writes bytes without framing. Only the header writer uses this.
  Status AppendRaw(std::string_view bytes);

  /// Flushes userspace buffers and fsyncs the file descriptor. The file is
  /// on stable storage when this returns OK.
  Status Sync();

  /// Sync + close. Idempotent; the destructor calls it best-effort.
  Status Close();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  explicit TraceFileWriter(std::FILE* file) : file_(file) {}
  std::FILE* file_ = nullptr;
  uint64_t bytes_written_ = 0;
};

/// Sequential reader with full validation: magic + version on open, CRC +
/// bounds on every record. Next() returns kNotFound at a clean end of
/// stream, kOutOfRange on a torn/truncated tail, kInvalidArgument on CRC or
/// structural corruption.
class TraceFileReader {
 public:
  static StatusOr<std::unique_ptr<TraceFileReader>> Open(
      const std::string& path);
  ~TraceFileReader();

  TraceFileReader(const TraceFileReader&) = delete;
  TraceFileReader& operator=(const TraceFileReader&) = delete;

  /// Reads the next record payload (type byte included). See class comment
  /// for the error contract.
  Status Next(std::string* payload);

  uint32_t version() const { return version_; }
  uint64_t created_wall_ns() const { return created_wall_ns_; }

 private:
  explicit TraceFileReader(std::FILE* file) : file_(file) {}
  std::FILE* file_ = nullptr;
  uint32_t version_ = 0;
  uint64_t created_wall_ns_ = 0;
};

/// Writes the versioned header (recorder side).
Status WriteTraceHeader(TraceFileWriter* writer, uint64_t created_wall_ns);

}  // namespace robopt

#endif  // ROBOPT_WORKLOAD_TRACE_FORMAT_H_
