#include "workload/arrival.h"

#include <cmath>

namespace robopt {

ArrivalProcess::ArrivalProcess(const ArrivalOptions& options, uint64_t seed)
    : options_(options), rng_(seed) {
  if (options_.kind == ArrivalOptions::Kind::kBursty) {
    state_ends_s_ = Exponential(1.0 / options_.mean_quiet_s);
  }
}

double ArrivalProcess::Exponential(double rate) {
  double u = rng_.NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

double ArrivalProcess::Next() {
  switch (options_.kind) {
    case ArrivalOptions::Kind::kClosedLoop:
      return 0.0;
    case ArrivalOptions::Kind::kFixedRate:
      now_s_ += 1.0 / options_.rate_per_s;
      return now_s_;
    case ArrivalOptions::Kind::kPoisson:
      now_s_ += Exponential(options_.rate_per_s);
      return now_s_;
    case ArrivalOptions::Kind::kDiurnal: {
      // Exact thinning: propose at the envelope rate base*(1+amp), accept
      // with probability rate(t)/envelope.
      const double base = options_.rate_per_s;
      const double amp = options_.diurnal_amplitude;
      const double envelope = base * (1.0 + amp);
      for (;;) {
        now_s_ += Exponential(envelope);
        constexpr double kTwoPi = 6.283185307179586;
        const double rate =
            base * (1.0 + amp * std::sin(kTwoPi * now_s_ /
                                         options_.diurnal_period_s));
        if (rng_.NextDouble() * envelope <= rate) return now_s_;
      }
    }
    case ArrivalOptions::Kind::kBursty: {
      // Exact MMPP sampling: arrivals are memoryless within a state, so a
      // candidate that crosses the state boundary restarts fresh at the
      // boundary under the new state's rate.
      for (;;) {
        const double rate = options_.rate_per_s *
                            (in_burst_ ? options_.burst_rate_multiplier : 1.0);
        const double candidate = now_s_ + Exponential(rate);
        if (candidate <= state_ends_s_) {
          now_s_ = candidate;
          return now_s_;
        }
        now_s_ = state_ends_s_;
        in_burst_ = !in_burst_;
        state_ends_s_ =
            now_s_ + Exponential(1.0 / (in_burst_ ? options_.mean_burst_s
                                                  : options_.mean_quiet_s));
      }
    }
  }
  return now_s_;  // Unreachable; keeps -Wreturn-type quiet.
}

}  // namespace robopt
