#include "workload/driver.h"

#include <chrono>
#include <cmath>
#include <thread>
#include <unordered_map>
#include <utility>

#include "platform/execution_plan.h"
#include "serve/plan_cache.h"

namespace robopt {
namespace {

/// The served assignment as a per-operator alt vector (-1 = unassigned),
/// the shape the trace records.
std::vector<int16_t> AssignmentOf(const ExecutionPlan& plan) {
  const int n = plan.logical_plan().num_operators();
  std::vector<int16_t> assignment(static_cast<size_t>(n), -1);
  for (int id = 0; id < n; ++id) {
    assignment[static_cast<size_t>(id)] =
        static_cast<int16_t>(plan.alt_index(static_cast<OperatorId>(id)));
  }
  return assignment;
}

}  // namespace

ReplayStats DriveWorkload(OptimizerService* service, WorkloadSource* source,
                          const DriveOptions& options) {
  ReplayStats stats;
  const auto start = std::chrono::steady_clock::now();
  Histogram* lag_us = nullptr;
  Counter* ops_total = nullptr;
  Counter* mismatches_total = nullptr;
  if (options.metrics != nullptr) {
    lag_us = options.metrics->GetHistogram("robopt_replay_lag_us",
                                           Histogram::LatencyBucketsUs());
    ops_total = options.metrics->GetCounter("robopt_replay_ops_total");
    mismatches_total =
        options.metrics->GetCounter("robopt_replay_mismatches_total");
  }
  const uint64_t expected_options_hash =
      PlanCache::HashOptions(options.optimize);
  // Generated feedback ops carry no assignment; they apply to the tenant's
  // last served plan (always a valid assignment, by construction).
  struct LastServed {
    LogicalPlan plan;
    std::vector<int16_t> assignment;
  };
  std::unordered_map<uint64_t, LastServed> last_served;

  WorkloadOp op;
  uint64_t ops_seen = 0;
  while (source->GetNext(&op)) {
    if (ops_total != nullptr) ops_total->Add(1);
    // Deterministic SLO cadence: re-evaluate burn every slo_every ops so a
    // replayed latency degradation tightens admission mid-drive without
    // depending on the background worker's wall-clock poll.
    if (options.slo_every > 0 && ++ops_seen % options.slo_every == 0) {
      service->EvaluateSloNow();
      ++stats.slo_evaluations;
      const SloHealth health = service->slo_health();
      stats.final_slo_health = health;
      if (health > stats.worst_slo_health) stats.worst_slo_health = health;
    }
    // Time warp: speedup 0 never sleeps; otherwise honor the stream's
    // arrival offsets compressed by the factor and track how far behind
    // the pacing target the driver is running.
    if (options.speedup > 0.0) {
      const double target_s = op.arrival_s / options.speedup;
      const auto target =
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(target_s));
      const auto now = std::chrono::steady_clock::now();
      if (now < target) {
        std::this_thread::sleep_until(target);
      } else {
        const double lag =
            std::chrono::duration<double>(now - target).count();
        if (lag > stats.max_lag_s) stats.max_lag_s = lag;
        if (lag_us != nullptr) lag_us->Observe(lag * 1e6);
      }
    }

    switch (op.kind) {
      case WorkloadOpKind::kOptimize: {
        ++stats.optimizes;
        RequestContext ctx;
        ctx.tenant = op.tenant;
        auto result =
            service->Optimize(op.plan, op.has_cards ? &op.cards : nullptr,
                              options.optimize, ctx);
        if (!result.ok()) {
          ++stats.optimize_errors;
          break;
        }
        last_served[op.tenant] =
            LastServed{op.plan, AssignmentOf(result->optimize.plan)};
        if (!options.verify || !op.recorded.valid ||
            op.recorded.status != StatusCode::kOk) {
          break;
        }
        ++stats.verified;
        if (op.recorded.options_hash != expected_options_hash) {
          ++stats.options_hash_mismatches;
        }
        const std::vector<int16_t> assignment =
            AssignmentOf(result->optimize.plan);
        const bool same =
            assignment == op.recorded.assignment &&
            result->optimize.predicted_runtime_s ==
                op.recorded.predicted_runtime_s &&
            result->optimize.model_version == op.recorded.model_version;
        if (!same) {
          ++stats.mismatches;
          if (mismatches_total != nullptr) mismatches_total->Add(1);
        }
        break;
      }
      case WorkloadOpKind::kFeedback: {
        if (options.registry == nullptr || !op.has_cards) {
          ++stats.feedbacks_skipped;
          break;
        }
        // Recorded feedback brings its own plan + assignment; generated
        // feedback (empty assignment) applies to the tenant's last served
        // plan.
        const LogicalPlan* logical = &op.plan;
        const std::vector<int16_t>* assignment = &op.assignment;
        if (op.assignment.empty()) {
          auto it = last_served.find(op.tenant);
          if (it == last_served.end()) {
            ++stats.feedbacks_skipped;
            break;
          }
          logical = &it->second.plan;
          assignment = &it->second.assignment;
        }
        // Dimensional safety: assignment and observed cards must both cover
        // the plan they are applied to (a tenant may have optimized a
        // different plan since a generated feedback op was scheduled).
        if (static_cast<int>(assignment->size()) !=
                logical->num_operators() ||
            static_cast<int>(op.cards.input.size()) <
                logical->num_operators() ||
            static_cast<int>(op.cards.output.size()) <
                logical->num_operators()) {
          ++stats.feedbacks_skipped;
          break;
        }
        ExecutionPlan plan(logical, options.registry);
        bool usable = true;
        for (int id = 0; id < logical->num_operators(); ++id) {
          const int16_t alt = (*assignment)[static_cast<size_t>(id)];
          if (alt < 0) {
            usable = false;
            break;
          }
          plan.Assign(static_cast<OperatorId>(id), alt);
        }
        if (!usable) {
          ++stats.feedbacks_skipped;
          break;
        }
        ExecResult result;
        result.cost.total_s = op.actual_runtime_s;
        result.observed = op.cards;
        // Generated feedback may carry cards sized for a larger plan than
        // the one it lands on; trim so downstream consumers (feature
        // encoding, the trace recorder) see exactly-sized vectors.
        const size_t n = static_cast<size_t>(logical->num_operators());
        if (result.observed.input.size() > n) result.observed.input.resize(n);
        if (result.observed.output.size() > n) result.observed.output.resize(n);
        service->OnExecution(plan, result);
        ++stats.feedbacks;
        break;
      }
    }
  }
  stats.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

}  // namespace robopt
