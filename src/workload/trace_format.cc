#include "workload/trace_format.h"

#include <array>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "workload/bytes.h"

namespace robopt {
namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

Status WriteError(const char* what) {
  return Status::Internal(std::string("trace write failed: ") + what);
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (char ch : data) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

StatusOr<std::unique_ptr<TraceFileWriter>> TraceFileWriter::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open trace file for writing: " + path);
  }
  return std::unique_ptr<TraceFileWriter>(new TraceFileWriter(file));
}

TraceFileWriter::~TraceFileWriter() { Close(); }

Status TraceFileWriter::Append(std::string_view payload) {
  if (file_ == nullptr) return WriteError("writer is closed");
  if (payload.empty() || payload.size() > kMaxTracePayload) {
    return Status::InvalidArgument("trace payload size out of range");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32(payload);
  if (std::fwrite(&len, sizeof len, 1, file_) != 1 ||
      std::fwrite(&crc, sizeof crc, 1, file_) != 1 ||
      std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size()) {
    return WriteError("fwrite");
  }
  bytes_written_ += sizeof len + sizeof crc + payload.size();
  return Status::OK();
}

Status TraceFileWriter::AppendRaw(std::string_view bytes) {
  if (file_ == nullptr) return WriteError("writer is closed");
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return WriteError("fwrite");
  }
  bytes_written_ += bytes.size();
  return Status::OK();
}

Status TraceFileWriter::Sync() {
  if (file_ == nullptr) return WriteError("writer is closed");
  if (std::fflush(file_) != 0) return WriteError("fflush");
#ifndef _WIN32
  if (::fsync(fileno(file_)) != 0) return WriteError("fsync");
#endif
  return Status::OK();
}

Status TraceFileWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  Status sync = Sync();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (!sync.ok()) return sync;
  if (rc != 0) return WriteError("fclose");
  return Status::OK();
}

Status WriteTraceHeader(TraceFileWriter* writer, uint64_t created_wall_ns) {
  // The header is written raw (not record-framed) so a reader can validate
  // the magic before trusting any length fields.
  ByteWriter w;
  w.U32(kTraceVersion);
  w.U32(/*flags=*/0);
  w.U64(created_wall_ns);
  const uint32_t crc = Crc32(w.bytes());
  std::string header(kTraceMagic, sizeof kTraceMagic);
  header += w.bytes();
  header.append(reinterpret_cast<const char*>(&crc), sizeof crc);
  if (writer == nullptr) return Status::InvalidArgument("null writer");
  return writer->AppendRaw(header);
}

StatusOr<std::unique_ptr<TraceFileReader>> TraceFileReader::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  auto reader = std::unique_ptr<TraceFileReader>(new TraceFileReader(file));
  char magic[sizeof kTraceMagic];
  std::string body(16, '\0');
  uint32_t crc = 0;
  if (std::fread(magic, 1, sizeof magic, file) != sizeof magic ||
      std::fread(body.data(), 1, body.size(), file) != body.size() ||
      std::fread(&crc, sizeof crc, 1, file) != 1) {
    return Status::OutOfRange("trace file shorter than its header: " + path);
  }
  if (std::memcmp(magic, kTraceMagic, sizeof kTraceMagic) != 0) {
    return Status::InvalidArgument("not a robopt trace file: " + path);
  }
  if (Crc32(body) != crc) {
    return Status::InvalidArgument("trace header CRC mismatch: " + path);
  }
  ByteReader r(body);
  uint32_t version = 0, flags = 0;
  uint64_t created = 0;
  r.U32(&version);
  r.U32(&flags);
  r.U64(&created);
  if (version != kTraceVersion) {
    return Status::InvalidArgument("unsupported trace version " +
                                   std::to_string(version));
  }
  reader->version_ = version;
  reader->created_wall_ns_ = created;
  return reader;
}

TraceFileReader::~TraceFileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status TraceFileReader::Next(std::string* payload) {
  if (file_ == nullptr) return Status::Internal("reader is closed");
  uint32_t len = 0;
  const size_t got_len = std::fread(&len, 1, sizeof len, file_);
  if (got_len == 0) return Status::NotFound("end of trace");
  if (got_len != sizeof len) {
    return Status::OutOfRange("torn record length at end of trace");
  }
  if (len == 0 || len > kMaxTracePayload) {
    return Status::InvalidArgument("record length " + std::to_string(len) +
                                   " out of range (corrupt trace)");
  }
  uint32_t crc = 0;
  if (std::fread(&crc, 1, sizeof crc, file_) != sizeof crc) {
    return Status::OutOfRange("torn record header at end of trace");
  }
  payload->resize(len);
  if (std::fread(payload->data(), 1, len, file_) != len) {
    return Status::OutOfRange("truncated record payload at end of trace");
  }
  if (Crc32(*payload) != crc) {
    return Status::InvalidArgument("record CRC mismatch (corrupt trace)");
  }
  return Status::OK();
}

}  // namespace robopt
