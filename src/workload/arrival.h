#ifndef ROBOPT_WORKLOAD_ARRIVAL_H_
#define ROBOPT_WORKLOAD_ARRIVAL_H_

#include <cstdint>

#include "common/rng.h"

namespace robopt {

/// Open-loop arrival processes for generated workload streams. All times
/// are virtual stream seconds; the driver's time warp decides how fast they
/// play out.
struct ArrivalOptions {
  enum class Kind {
    /// No think time: every op arrives at t = 0 (classic closed-loop
    /// saturation — the driver issues as fast as the service serves).
    kClosedLoop,
    /// Deterministic fixed spacing at `rate_per_s`.
    kFixedRate,
    /// Homogeneous Poisson at `rate_per_s`.
    kPoisson,
    /// Nonhomogeneous Poisson with a sinusoidal day curve:
    /// rate(t) = rate_per_s * (1 + diurnal_amplitude * sin(2πt/period)),
    /// sampled exactly by thinning.
    kDiurnal,
    /// 2-state Markov-modulated Poisson process: quiet periods at
    /// `rate_per_s` interleaved with bursts at rate_per_s *
    /// burst_rate_multiplier; state holding times are exponential.
    kBursty,
  };
  Kind kind = Kind::kPoisson;
  double rate_per_s = 100.0;
  double diurnal_amplitude = 0.8;  ///< In [0, 1).
  double diurnal_period_s = 60.0;
  double burst_rate_multiplier = 10.0;
  double mean_burst_s = 0.5;
  double mean_quiet_s = 5.0;
};

/// Stateful arrival-time generator. Deterministic for a (options, seed)
/// pair; Next() returns non-decreasing absolute stream times.
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalOptions& options, uint64_t seed);

  /// Absolute stream time of the next arrival, in seconds.
  double Next();

 private:
  double Exponential(double rate);

  const ArrivalOptions options_;
  Rng rng_;
  double now_s_ = 0.0;
  bool in_burst_ = false;
  double state_ends_s_ = 0.0;
};

}  // namespace robopt

#endif  // ROBOPT_WORKLOAD_ARRIVAL_H_
