#ifndef ROBOPT_WORKLOAD_TRACE_RECORDER_H_
#define ROBOPT_WORKLOAD_TRACE_RECORDER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "common/status.h"
#include "plan/fingerprint.h"
#include "serve/optimizer_service.h"
#include "workload/trace_format.h"

namespace robopt {

struct TraceRecorderOptions {
  /// Bounded buffer between serving threads and the writer thread, in
  /// records. When full, new records are *dropped and counted* — recording
  /// must shed before it ever backpressures the request path.
  size_t queue_capacity = 4096;
  /// Also record feedback (OnFeedback) events, not just optimizes.
  bool record_feedback = true;
};

/// Point-in-time recorder counters.
struct TraceRecorderStats {
  uint64_t records_written = 0;  ///< Frames on disk (plan defs included).
  uint64_t records_dropped = 0;  ///< Shed on a full queue.
  uint64_t plan_defs = 0;        ///< Distinct plans defined in the trace.
  uint64_t bytes_written = 0;
};

/// Captures production serving traffic into the binary trace format for
/// later replay. Plugs into ServeOptions::request_observer; serving threads
/// serialize their record on their own stack, push it onto a bounded queue
/// and return — a background writer thread owns the file. On Close() the
/// recorder drains, fsyncs and atomically renames "<path>.tmp" into place
/// (the RandomForest::Save idiom), so a crash mid-recording leaves at most
/// a stale .tmp, never a half-written final trace.
///
/// Thread-safe: any number of serving threads may call OnRequest /
/// OnFeedback concurrently with each other and with Close().
class TraceRecorder : public RequestObserver {
 public:
  /// Creates the recorder and opens "<path>.tmp" for writing; the header is
  /// written immediately. The final `path` appears on Close().
  static StatusOr<std::unique_ptr<TraceRecorder>> Open(
      const std::string& path, TraceRecorderOptions options = {});

  /// Close()s (best-effort) if the caller did not.
  ~TraceRecorder() override;

  void OnRequest(const ServedRequest& request) override;
  void OnFeedback(const ExecutionPlan& plan, const ExecResult& result) override;
  void ExportTo(MetricsRegistry* registry) override;

  /// Stops the writer, drains the queue, fsyncs and renames the trace into
  /// place. Idempotent; no records are accepted afterwards. Returns the
  /// first error hit while writing/draining (the trace may be incomplete
  /// but is still well-formed up to its last frame).
  Status Close();

  TraceRecorderStats Stats() const;

 private:
  TraceRecorder(std::string path, TraceRecorderOptions options);

  /// Enqueues `record`, preceded by a plan-def frame when `fp` has not been
  /// defined in this trace yet. Drops atomically: either every frame of the
  /// event enters the queue or none does.
  void MaybeDefineAndEnqueue(const PlanFingerprint& fp,
                             const LogicalPlan& plan, std::string record);
  void WriterLoop();

  const std::string final_path_;
  const std::string tmp_path_;
  const TraceRecorderOptions options_;
  std::chrono::steady_clock::time_point open_steady_;

  std::mutex mu_;  ///< Guards queue_, seen_plans_, closed_, first_error_.
  std::condition_variable cv_;
  std::deque<std::string> queue_;
  std::unordered_set<std::string> seen_plans_;  ///< 16-byte fingerprint keys.
  bool closed_ = false;
  Status first_error_;

  std::unique_ptr<TraceFileWriter> writer_;  ///< Writer thread only.
  std::thread writer_thread_;

  std::atomic<uint64_t> sequence_{0};
  std::atomic<uint64_t> records_written_{0};
  std::atomic<uint64_t> records_dropped_{0};
  std::atomic<uint64_t> plan_defs_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

}  // namespace robopt

#endif  // ROBOPT_WORKLOAD_TRACE_RECORDER_H_
