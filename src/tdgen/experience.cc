#include "tdgen/experience.h"

#include <cmath>
#include <vector>

namespace robopt {

Status ExperienceLog::Record(const EnumerationContext& ctx,
                             const ExecutionPlan& plan, double runtime_s) {
  if (ctx.schema == nullptr || ctx.schema->width() != schema_->width()) {
    return Status::InvalidArgument(
        "context schema width does not match the experience log's schema");
  }
  if (!(runtime_s >= 0.0) || !std::isfinite(runtime_s)) {
    return Status::InvalidArgument("runtime must be non-negative and finite");
  }
  ROBOPT_RETURN_IF_ERROR(plan.Validate());
  std::vector<uint8_t> assignment(ctx.plan->num_operators(), 0);
  for (const LogicalOperator& op : ctx.plan->operators()) {
    assignment[op.id] = static_cast<uint8_t>(plan.alt_index(op.id) + 1);
  }
  // Encode outside the lock; only the append is serialized.
  const std::vector<float> features =
      EncodeAssignment(ctx, assignment.data());
  std::lock_guard<std::mutex> lock(mu_);
  data_.Add(features, static_cast<float>(runtime_s));
  return Status::OK();
}

Status ExperienceLog::RecordRow(const std::vector<float>& features,
                                double runtime_s) {
  if (features.size() != schema_->width()) {
    return Status::InvalidArgument(
        "feature row width does not match the experience log's schema");
  }
  if (!(runtime_s >= 0.0) || !std::isfinite(runtime_s)) {
    return Status::InvalidArgument("runtime must be non-negative and finite");
  }
  std::lock_guard<std::mutex> lock(mu_);
  data_.Add(features, static_cast<float>(runtime_s));
  return Status::OK();
}

size_t ExperienceLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_.size();
}

MlDataset ExperienceLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

StatusOr<std::unique_ptr<RandomForest>> ExperienceLog::Retrain(
    const MlDataset& base, int weight, RandomForest::Params params) const {
  const MlDataset snapshot = Snapshot();
  if (base.dim() != snapshot.dim()) {
    return Status::InvalidArgument("base dataset has a different width");
  }
  MlDataset merged(snapshot.dim());
  for (size_t i = 0; i < base.size(); ++i) {
    merged.Add(base.row(i), base.label(i));
  }
  for (int w = 0; w < weight; ++w) {
    for (size_t i = 0; i < snapshot.size(); ++i) {
      merged.Add(snapshot.row(i), snapshot.label(i));
    }
  }
  auto forest = std::make_unique<RandomForest>(params);
  ROBOPT_RETURN_IF_ERROR(forest->Train(merged));
  return forest;
}

}  // namespace robopt
