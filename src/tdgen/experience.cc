#include "tdgen/experience.h"

#include <vector>

namespace robopt {

Status ExperienceLog::Record(const EnumerationContext& ctx,
                             const ExecutionPlan& plan, double runtime_s) {
  if (ctx.schema != schema_) {
    return Status::InvalidArgument(
        "context schema does not match the experience log's schema");
  }
  if (!(runtime_s >= 0.0)) {
    return Status::InvalidArgument("runtime must be non-negative and finite");
  }
  ROBOPT_RETURN_IF_ERROR(plan.Validate());
  std::vector<uint8_t> assignment(ctx.plan->num_operators(), 0);
  for (const LogicalOperator& op : ctx.plan->operators()) {
    assignment[op.id] = static_cast<uint8_t>(plan.alt_index(op.id) + 1);
  }
  const std::vector<float> features =
      EncodeAssignment(ctx, assignment.data());
  data_.Add(features, static_cast<float>(runtime_s));
  return Status::OK();
}

StatusOr<std::unique_ptr<RandomForest>> ExperienceLog::Retrain(
    const MlDataset& base, int weight, RandomForest::Params params) const {
  if (base.dim() != data_.dim()) {
    return Status::InvalidArgument("base dataset has a different width");
  }
  MlDataset merged(data_.dim());
  for (size_t i = 0; i < base.size(); ++i) {
    merged.Add(base.row(i), base.label(i));
  }
  for (int w = 0; w < weight; ++w) {
    for (size_t i = 0; i < data_.size(); ++i) {
      merged.Add(data_.row(i), data_.label(i));
    }
  }
  auto forest = std::make_unique<RandomForest>(params);
  ROBOPT_RETURN_IF_ERROR(forest->Train(merged));
  return forest;
}

}  // namespace robopt
