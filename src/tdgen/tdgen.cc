#include "tdgen/tdgen.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"
#include "core/cost_oracle.h"
#include "core/priority_enumeration.h"
#include "tdgen/interpolation.h"
#include "workloads/synthetic.h"

namespace robopt {

Tdgen::Tdgen(const PlatformRegistry* registry, const FeatureSchema* schema,
             const Executor* executor, TdgenOptions options)
    : registry_(registry),
      schema_(schema),
      executor_(executor),
      options_(std::move(options)) {}

StatusOr<MlDataset> Tdgen::Generate(TdgenReport* report) {
  constexpr double kBaseCardinality = 1e6;
  MlDataset data(schema_->width());
  TdgenReport local_report;
  Rng rng(options_.seed);
  ZeroCostOracle no_cost;

  const bool has_relational =
      !registry_->AlternativesFor(LogicalOpKind::kTableSource).empty();

  // Mode (i): derive shapes and maximum size from the user's workload.
  if (!options_.workload.empty()) {
    bool any_loop = false;
    bool any_juncture = false;
    int max_ops = 5;
    for (const LogicalPlan* query : options_.workload) {
      const TopologyCounts counts = query->CountTopologies();
      any_loop |= counts.loop > 0;
      any_juncture |= counts.juncture > 0;
      max_ops = std::max(max_ops, query->num_operators());
    }
    options_.shapes = {"pipeline"};
    if (any_juncture) options_.shapes.push_back("juncture");
    if (any_loop) options_.shapes.push_back("loop");
    options_.max_operators = max_ops;
  }

  for (const std::string& shape : options_.shapes) {
    for (int p = 0; p < options_.plans_per_shape; ++p) {
      const uint64_t plan_seed = rng.Next();
      const int num_ops =
          static_cast<int>(rng.NextInt(5, options_.max_operators));
      // A share of the plans reads from relational tables when a DBMS
      // platform is registered, so the model sees Export conversions.
      const bool table_source = has_relational && rng.NextBernoulli(0.35);
      LogicalPlan plan;
      if (shape == "pipeline") {
        plan = MakeSyntheticPipeline(std::max(3, num_ops), kBaseCardinality,
                                     plan_seed, table_source);
      } else if (shape == "juncture") {
        const int joins = std::clamp((num_ops - 3) / 3, 1, 6);
        plan = MakeSyntheticJoinTree(joins, kBaseCardinality, plan_seed,
                                     table_source);
      } else if (shape == "loop") {
        // Vary the iteration count so the model sees short and long loops
        // (the evaluation sweeps iterations; Fig. 12).
        const int iters = std::max(
            1, static_cast<int>(options_.loop_iterations *
                                std::pow(4.0, rng.NextUniform(-1.5, 1.5))));
        plan = MakeSyntheticLoopPlan(std::max(9, num_ops), kBaseCardinality,
                                     iters, plan_seed);
      } else {
        return Status::InvalidArgument("unknown TDGEN shape: " + shape);
      }
      ++local_report.logical_plans;

      // Remember the base source cardinalities so configuration profiles
      // can rescale them.
      std::vector<std::pair<OperatorId, double>> base_cards;
      for (const LogicalOperator& op : plan.operators()) {
        if (IsSource(op.kind)) {
          base_cards.emplace_back(op.id, op.source_cardinality);
        }
      }

      // Job generation: enumerate candidate plan structures with the
      // beta-switch pruning (Section VI-A).
      auto base_ctx =
          EnumerationContext::Make(&plan, registry_, schema_, nullptr);
      if (!base_ctx.ok()) return base_ctx.status();
      EnumeratorOptions enum_options;
      enum_options.prune = PruneMode::kSwitchCap;
      enum_options.beta = options_.beta;
      enum_options.max_rows_per_enumeration =
          options_.max_structures_per_plan * 4;
      PriorityEnumerator enumerator(&base_ctx.value(), &no_cost, enum_options);
      auto run = enumerator.Run();
      if (!run.ok()) return run.status();
      const PlanVectorEnumeration& final_enum = run->final_enumeration;

      std::vector<std::vector<uint8_t>> structures;
      const size_t keep =
          std::min(final_enum.size(), options_.max_structures_per_plan);
      const double stride = final_enum.size() / static_cast<double>(keep);
      for (size_t i = 0; i < keep; ++i) {
        const uint8_t* assignment =
            final_enum.assignment(static_cast<size_t>(i * stride));
        structures.emplace_back(assignment,
                                assignment + final_enum.num_ops());
      }
      local_report.structures += structures.size();

      // Log generation: instantiate each structure with the cardinality
      // profiles; execute the J_r subset, impute the rest (Section VI-B).
      for (const std::vector<uint8_t>& assignment : structures) {
        struct ProfilePoint {
          double card = 0.0;
          std::vector<float> features;
          double label = -1.0;  // <0 = pending imputation.
        };
        std::vector<ProfilePoint> points;
        std::vector<double> exec_x;
        std::vector<double> exec_y;
        double first_failing_card = std::numeric_limits<double>::infinity();

        for (size_t ci = 0; ci < options_.cardinality_grid.size(); ++ci) {
          const double card = options_.cardinality_grid[ci];
          const double factor = card / kBaseCardinality;
          for (const auto& [op_id, base] : base_cards) {
            plan.mutable_op(op_id).source_cardinality =
                std::max(1.0, base * factor);
          }
          auto ctx =
              EnumerationContext::Make(&plan, registry_, schema_, nullptr);
          if (!ctx.ok()) return ctx.status();

          ProfilePoint point;
          point.card = card;
          point.features = EncodeAssignment(ctx.value(), assignment.data());
          ++local_report.jobs_total;

          const bool execute =
              std::find(options_.executed_points.begin(),
                        options_.executed_points.end(),
                        static_cast<int>(ci)) != options_.executed_points.end();
          if (execute) {
            const ExecutionPlan exec_plan =
                AssignmentToPlan(ctx.value(), assignment.data());
            const CostBreakdown cost =
                executor_->Simulate(exec_plan, ctx->cards);
            ++local_report.jobs_executed;
            if (cost.oom || !std::isfinite(cost.total_s)) {
              ++local_report.jobs_failed;
              point.label = options_.failure_penalty_s;
              first_failing_card = std::min(first_failing_card, card);
            } else {
              point.label = cost.total_s;
              // Interpolation nodes live in log-log space: cardinalities
              // span many decades and runtimes are near power laws there,
              // which keeps the degree-5 pieces well conditioned (the paper
              // does not specify the space; linear space oscillates).
              exec_x.push_back(std::log10(card));
              exec_y.push_back(std::log1p(cost.total_s));
            }
          }
          points.push_back(std::move(point));
        }

        // Impute pending labels. Monotone failure assumption: anything at
        // or beyond the smallest failing cardinality also fails.
        for (ProfilePoint& point : points) {
          if (point.label >= 0.0) continue;
          ++local_report.jobs_imputed;
          if (point.card >= first_failing_card || exec_x.empty()) {
            point.label = options_.failure_penalty_s;
            continue;
          }
          const PiecewisePolynomial poly = PiecewisePolynomial::Fit(
              exec_x, exec_y, options_.interpolation_degree);
          point.label =
              std::max(std::expm1(poly.Eval(std::log10(point.card))), 1e-4);
        }
        for (const ProfilePoint& point : points) {
          data.Add(point.features, static_cast<float>(point.label));
        }
      }

      // Restore the base cardinalities (the plan is about to go away, but
      // keep the invariant for clarity).
      for (const auto& [op_id, base] : base_cards) {
        plan.mutable_op(op_id).source_cardinality = base;
      }
    }
  }

  if (report != nullptr) *report = local_report;
  return data;
}

StatusOr<std::unique_ptr<RandomForest>> TrainRuntimeModel(
    const PlatformRegistry* registry, const FeatureSchema* schema,
    const Executor* executor, TdgenOptions options,
    RegressionMetrics* holdout, TdgenReport* report) {
  Tdgen tdgen(registry, schema, executor, options);
  auto data = tdgen.Generate(report);
  if (!data.ok()) return data.status();

  MlDataset train(schema->width());
  MlDataset test(schema->width());
  data->Split(0.9, options.seed ^ 0xabcdefULL, &train, &test);

  RandomForest::Params params;
  params.seed = options.seed;
  params.num_trees = 80;
  // Regression forests do better with ~d/3 features per split than sqrt(d):
  // only a handful of the plan-vector cells matter for any one plan shape.
  params.tree.max_features = static_cast<int>(schema->width() / 3);
  auto forest = std::make_unique<RandomForest>(params);
  ROBOPT_RETURN_IF_ERROR(forest->Train(train));
  if (holdout != nullptr) *holdout = Evaluate(*forest, test);
  return forest;
}

}  // namespace robopt
