#include "tdgen/interpolation.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace robopt {

PiecewisePolynomial PiecewisePolynomial::Fit(std::vector<double> x,
                                             std::vector<double> y,
                                             int degree) {
  ROBOPT_CHECK(!x.empty() && x.size() == y.size());
  ROBOPT_CHECK(degree >= 1);
  // Sort by x and drop duplicate abscissae (keep the first label).
  std::vector<size_t> order(x.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return x[a] < x[b]; });
  std::vector<double> xs;
  std::vector<double> ys;
  for (size_t i : order) {
    if (!xs.empty() && x[i] == xs.back()) continue;
    xs.push_back(x[i]);
    ys.push_back(y[i]);
  }

  PiecewisePolynomial out;
  const size_t window = static_cast<size_t>(degree) + 1;
  size_t begin = 0;
  while (begin < xs.size()) {
    size_t end = std::min(begin + window, xs.size());
    // Avoid a trailing singleton piece: borrow from the previous window.
    if (end - begin == 1 && begin > 0) --begin;
    Piece piece;
    piece.x_lo = xs[begin];
    piece.x_hi = xs[end - 1];
    const double span = piece.x_hi - piece.x_lo;
    piece.scale = span > 0 ? 1.0 / span : 1.0;
    const size_t n = end - begin;
    piece.nodes.resize(n);
    for (size_t i = 0; i < n; ++i) {
      piece.nodes[i] = (xs[begin + i] - piece.x_lo) * piece.scale;
    }
    // Newton divided differences.
    std::vector<double> table(ys.begin() + begin, ys.begin() + end);
    piece.coeffs.resize(n);
    piece.coeffs[0] = table[0];
    for (size_t level = 1; level < n; ++level) {
      for (size_t i = n - 1; i >= level; --i) {
        table[i] = (table[i] - table[i - 1]) /
                   (piece.nodes[i] - piece.nodes[i - level]);
      }
      piece.coeffs[level] = table[level];
    }
    out.pieces_.push_back(std::move(piece));
    begin = end;
  }
  return out;
}

double PiecewisePolynomial::EvalPiece(const Piece& piece, double x) {
  const double t = (x - piece.x_lo) * piece.scale;
  // Horner evaluation of the Newton form.
  const size_t n = piece.coeffs.size();
  double value = piece.coeffs[n - 1];
  for (size_t i = n - 1; i > 0; --i) {
    value = value * (t - piece.nodes[i - 1]) + piece.coeffs[i - 1];
  }
  return value;
}

double PiecewisePolynomial::Eval(double x) const {
  ROBOPT_CHECK(!pieces_.empty());
  // Pieces are built over ascending windows, so x_lo is sorted: the
  // covering piece is the last one with x_lo <= x (clamped to the first
  // piece when x precedes the covered range — extrapolation must not
  // explode). upper_bound finds the first piece with x_lo > x.
  auto it = std::upper_bound(
      pieces_.begin(), pieces_.end(), x,
      [](double probe, const Piece& piece) { return probe < piece.x_lo; });
  const Piece& piece = it == pieces_.begin() ? pieces_.front() : *(it - 1);
  return EvalPiece(piece, x);
}

double PiecewisePolynomial::EvalScanReference(double x) const {
  ROBOPT_CHECK(!pieces_.empty());
  // Locate the piece whose range contains x (clamping at the ends).
  const Piece* piece = &pieces_.front();
  for (const Piece& candidate : pieces_) {
    if (x >= candidate.x_lo) piece = &candidate;
  }
  return EvalPiece(*piece, x);
}

}  // namespace robopt
