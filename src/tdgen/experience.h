#ifndef ROBOPT_TDGEN_EXPERIENCE_H_
#define ROBOPT_TDGEN_EXPERIENCE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "core/operations.h"
#include "ml/random_forest.h"

namespace robopt {

/// Execution-log collector: every really-executed plan becomes a training
/// point (its plan vector, its measured runtime). The paper's Robopt "is
/// able to find such cases by observing patterns in the execution logs" —
/// this is that feedback loop: TDGEN bootstraps the model synthetically,
/// production runs refine it.
///
/// Thread-safe: Record/RecordRow/size/Snapshot/Retrain may race freely; the
/// serving layer's retrain worker records and retrains concurrently with
/// executors appending. Retrain works on an internally taken snapshot, so a
/// long training run never blocks recording.
class ExperienceLog {
 public:
  /// `schema` must outlive the log.
  explicit ExperienceLog(const FeatureSchema* schema)
      : schema_(schema), data_(schema->width()) {}

  /// Records one executed plan. `ctx` must have been built over the same
  /// plan/registry/cardinalities the execution used; a context whose schema
  /// width disagrees with the log's schema is rejected (it would corrupt
  /// the row-major dataset).
  Status Record(const EnumerationContext& ctx, const ExecutionPlan& plan,
                double runtime_s);

  /// Records a pre-encoded plan vector (the serving layer's feedback-drain
  /// path). `features` must be exactly the log's schema width.
  Status RecordRow(const std::vector<float>& features, double runtime_s);

  size_t size() const;

  /// Consistent copy of the logged data.
  MlDataset Snapshot() const;

  /// Trains a fresh forest on `base` (e.g. the TDGEN set) plus a snapshot
  /// of the logged experience, weighting experience by duplicating it
  /// `weight` times — real logs are scarcer but more trustworthy than
  /// synthetic ones.
  StatusOr<std::unique_ptr<RandomForest>> Retrain(
      const MlDataset& base, int weight = 4,
      RandomForest::Params params = RandomForest::Params()) const;

 private:
  const FeatureSchema* schema_;
  mutable std::mutex mu_;  ///< Guards data_.
  MlDataset data_;
};

}  // namespace robopt

#endif  // ROBOPT_TDGEN_EXPERIENCE_H_
