#ifndef ROBOPT_TDGEN_EXPERIENCE_H_
#define ROBOPT_TDGEN_EXPERIENCE_H_

#include <memory>

#include "common/status.h"
#include "core/operations.h"
#include "ml/random_forest.h"

namespace robopt {

/// Execution-log collector: every really-executed plan becomes a training
/// point (its plan vector, its measured runtime). The paper's Robopt "is
/// able to find such cases by observing patterns in the execution logs" —
/// this is that feedback loop: TDGEN bootstraps the model synthetically,
/// production runs refine it.
class ExperienceLog {
 public:
  /// `schema` must outlive the log.
  explicit ExperienceLog(const FeatureSchema* schema)
      : schema_(schema), data_(schema->width()) {}

  /// Records one executed plan. `ctx` must have been built over the same
  /// plan/registry/cardinalities the execution used.
  Status Record(const EnumerationContext& ctx, const ExecutionPlan& plan,
                double runtime_s);

  size_t size() const { return data_.size(); }
  const MlDataset& data() const { return data_; }

  /// Trains a fresh forest on `base` (e.g. the TDGEN set) plus the logged
  /// experience, weighting experience by duplicating it `weight` times —
  /// real logs are scarcer but more trustworthy than synthetic ones.
  StatusOr<std::unique_ptr<RandomForest>> Retrain(
      const MlDataset& base, int weight = 4,
      RandomForest::Params params = RandomForest::Params()) const;

 private:
  const FeatureSchema* schema_;
  MlDataset data_;
};

}  // namespace robopt

#endif  // ROBOPT_TDGEN_EXPERIENCE_H_
