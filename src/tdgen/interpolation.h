#ifndef ROBOPT_TDGEN_INTERPOLATION_H_
#define ROBOPT_TDGEN_INTERPOLATION_H_

#include <cstddef>
#include <vector>

namespace robopt {

/// Piecewise polynomial interpolation of runtime as a function of input
/// cardinality (Section VI-B / Fig. 8). The paper fits degree-5 pieces over
/// the executed jobs and imputes the runtimes of the remaining jobs.
///
/// Pieces cover consecutive windows of up to degree+1 points; within a
/// piece, Newton's divided differences on normalized abscissae give an
/// exact interpolant. Evaluation clamps to the covered range's nearest
/// piece (the generator only imputes interior points, but extrapolation
/// must not explode).
class PiecewisePolynomial {
 public:
  /// Fits pieces through (x, y). Requires x strictly increasing after
  /// dedup; at least one point.
  static PiecewisePolynomial Fit(std::vector<double> x, std::vector<double> y,
                                 int degree = 5);

  /// Evaluates at `x`, locating the covering piece by binary search on the
  /// piece lower bounds — O(log pieces) instead of the linear scan TDGEN
  /// shipped with. Bit-identical to EvalScanReference for every input (the
  /// same piece is selected, so the arithmetic is unchanged).
  double Eval(double x) const;

  /// The original O(pieces) linear-scan lookup, kept as the oracle the
  /// regression test asserts Eval against bit-for-bit.
  double EvalScanReference(double x) const;

  size_t num_pieces() const { return pieces_.size(); }

 private:
  struct Piece {
    double x_lo = 0.0;
    double x_hi = 0.0;
    double scale = 1.0;             ///< Normalization: t = (x - x_lo) * scale.
    std::vector<double> coeffs;     ///< Newton coefficients.
    std::vector<double> nodes;      ///< Normalized interpolation nodes.
  };

  /// Horner evaluation of the piece's Newton form at x.
  static double EvalPiece(const Piece& piece, double x);

  std::vector<Piece> pieces_;
};

}  // namespace robopt

#endif  // ROBOPT_TDGEN_INTERPOLATION_H_
