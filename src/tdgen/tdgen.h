#ifndef ROBOPT_TDGEN_TDGEN_H_
#define ROBOPT_TDGEN_TDGEN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/feature_schema.h"
#include "exec/executor.h"
#include "ml/metrics.h"
#include "ml/ml_dataset.h"
#include "ml/random_forest.h"
#include "plan/logical_plan.h"

namespace robopt {

/// Options for the scalable training data generator (Section VI). TDGEN
/// supports the paper's three usage modes:
///  (i)   pass a real workload via `workload` — shapes and sizes are
///        extracted from it and similar synthetic plans are generated;
///  (ii)  specify `shapes` + `max_operators` (the default, used by the
///        paper's evaluation);
///  (iii) leave `shapes` at all three values and raise `plans_per_shape`
///        for an exhaustive sweep up to `max_operators`.
struct TdgenOptions {
  /// Topology shapes of the synthetic queries (mode (ii) of Section VI: the
  /// user specifies shapes and a maximum size). Recognized: "pipeline",
  /// "juncture", "loop" — the paper's evaluation uses these three.
  std::vector<std::string> shapes = {"pipeline", "juncture", "loop"};
  /// Mode (i): a real query workload. When non-empty, `shapes` and
  /// `max_operators` are *derived* from these plans (topologies present,
  /// largest operator count) instead of taken from the fields above.
  std::vector<const LogicalPlan*> workload;
  /// Maximum number of operators per synthetic plan.
  int max_operators = 20;
  /// Logical plans generated per shape.
  int plans_per_shape = 6;
  /// Platform-switch cap of the job-generation pruning (beta).
  int beta = 3;
  /// Input-cardinality configuration profiles each plan structure is
  /// instantiated with.
  std::vector<double> cardinality_grid = {1e3, 1e4, 1e5, 1e6, 1e7, 1e8};
  /// Indices into cardinality_grid that are actually *executed* (the set
  /// J_r: all small inputs plus a few medium/large ones); the rest are
  /// imputed by piecewise polynomial interpolation.
  std::vector<int> executed_points = {0, 1, 2, 4, 5};
  /// Degree of the interpolating pieces (the paper settles on 5).
  int interpolation_degree = 5;
  /// Cap on enumerated plan structures kept per logical plan.
  size_t max_structures_per_plan = 48;
  /// Iterations given to loop-shaped plans.
  int loop_iterations = 50;
  /// Label assigned to failed (out-of-memory) jobs so the model learns to
  /// avoid them; the paper simply has no logs for such plans, which leaves
  /// the optimizer blind — a penalty works better.
  double failure_penalty_s = 1e5;
  uint64_t seed = 7;
};

/// Statistics of one generation run (reported by the Fig. 8 bench and the
/// training example).
struct TdgenReport {
  size_t logical_plans = 0;
  size_t structures = 0;
  size_t jobs_total = 0;
  size_t jobs_executed = 0;
  size_t jobs_imputed = 0;
  size_t jobs_failed = 0;
};

/// TDGEN: generates synthetic logical plans of the requested shapes,
/// enumerates execution plans with the beta-switch pruning, instantiates
/// each with the cardinality profiles, executes a subset on the (simulated)
/// cluster and imputes the rest via interpolation — producing a labeled
/// training set for the runtime model in minutes instead of months.
class Tdgen {
 public:
  /// All pointers must outlive the generator.
  Tdgen(const PlatformRegistry* registry, const FeatureSchema* schema,
        const Executor* executor, TdgenOptions options = {});

  /// Runs the full pipeline and returns the labeled training set.
  StatusOr<MlDataset> Generate(TdgenReport* report = nullptr);

 private:
  const PlatformRegistry* registry_;
  const FeatureSchema* schema_;
  const Executor* executor_;
  TdgenOptions options_;
};

/// Convenience: run TDGEN, train the paper's random-forest runtime model on
/// a 90/10 split, and return it (plus holdout metrics / generation report
/// through the out-params when non-null).
StatusOr<std::unique_ptr<RandomForest>> TrainRuntimeModel(
    const PlatformRegistry* registry, const FeatureSchema* schema,
    const Executor* executor, TdgenOptions options = {},
    RegressionMetrics* holdout = nullptr, TdgenReport* report = nullptr);

}  // namespace robopt

#endif  // ROBOPT_TDGEN_TDGEN_H_
