#ifndef ROBOPT_EXEC_VIRTUAL_COST_H_
#define ROBOPT_EXEC_VIRTUAL_COST_H_

#include <string>
#include <vector>

#include "plan/cardinality.h"
#include "exec/perf_profile.h"
#include "platform/execution_plan.h"

namespace robopt {

/// Cost of one execution plan as charged by the virtual clock.
struct CostBreakdown {
  /// Total virtual runtime in seconds; +inf when the plan fails (OOM).
  double total_s = 0.0;
  bool oom = false;
  std::string failure;  ///< e.g. "out-of-memory on Java at Join".
  /// Operator blamed for an OOM (the overflowing operator, or the receiving
  /// operator of an overflowing conversion); kInvalidOperatorId otherwise.
  /// Lets the fault layer charge the failure to the right platform.
  OperatorId failed_op = kInvalidOperatorId;
  double startup_s = 0.0;
  double conversion_s = 0.0;
  /// Per-logical-operator virtual seconds (loop iterations included).
  std::vector<double> op_seconds;
};

/// Options for the virtual clock.
struct VirtualCostOptions {
  /// Lognormal noise sigma on per-operator costs (0 = deterministic ground
  /// truth). TDGEN can turn this on to make training logs realistic.
  double noise_sigma = 0.0;
  uint64_t noise_seed = 0x5eedULL;
};

/// The virtual clock: computes what an execution plan costs on the simulated
/// platforms, given per-operator cardinalities. This is the repository's
/// stand-in for the paper's 10-node cluster (see DESIGN.md). Both the
/// analytic simulator and the real (kernel-running) executor charge time
/// through this one class, so they always agree.
class VirtualCost {
 public:
  /// `registry` must outlive this object. Profiles default to
  /// PlatformProfile::ForName of each platform's name.
  explicit VirtualCost(const PlatformRegistry* registry,
                       VirtualCostOptions options = {});

  /// Overrides the profile of a platform (tests, what-if experiments).
  void SetProfile(PlatformId id, PlatformProfile profile);
  const PlatformProfile& profile(PlatformId id) const {
    return profiles_[id];
  }

  /// Full-plan cost from per-operator cardinalities (loop-aware; conversions
  /// and startup included).
  CostBreakdown PlanCost(const ExecutionPlan& plan,
                         const Cardinalities& cards) const;

  /// Cost in seconds of executing operator `id` once (one loop iteration),
  /// as assigned in `plan`. `iteration` distinguishes first-iteration work
  /// (e.g., the stateful sampler's initial shuffle) from steady state.
  double OpCost(const ExecutionPlan& plan, OperatorId id, double in_tuples,
                double out_tuples, int iteration) const;

  /// Plan-free variant used by calibration (the cost-model baselines profile
  /// single operators against the ground truth, as Rheem admins do).
  double OpCostRaw(const LogicalOperator& op, const ExecutionAlt& alt,
                   double in_tuples, double out_tuples, int iteration) const;

  /// Cost of one conversion instance moving `tuples` tuples of
  /// `tuple_bytes` each.
  double ConversionCost(const ConversionInstance& conv, double tuples,
                        double tuple_bytes) const;

  /// True if running `id` with `in_tuples` input tuples exceeds the assigned
  /// platform's memory (single-node / relational platforms only).
  bool ExceedsMemory(const ExecutionPlan& plan, OperatorId id,
                     double in_tuples) const;

 private:
  double Noise(OperatorId id, PlatformId platform) const;

  const PlatformRegistry* registry_;
  VirtualCostOptions options_;
  std::vector<PlatformProfile> profiles_;
};

/// Whether a logical operator implies a partitioning (shuffle) step.
bool IsShuffleKind(LogicalOpKind kind);

}  // namespace robopt

#endif  // ROBOPT_EXEC_VIRTUAL_COST_H_
