#include "exec/kernel.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace robopt {
namespace {

// Physical row cap for blow-up-prone generic kernels (Cartesian, FlatMap
// with large fan-out). Virtual cardinalities are tracked exactly; only the
// physical sample is capped.
constexpr size_t kPhysicalRowCap = 1 << 20;

uint64_t MixHash(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9e3779b97f4a7c15ULL + b + 0x2545f4914f6cdd1dULL;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

const Dataset& In(const KernelContext& ctx, size_t i) {
  ROBOPT_CHECK(i < ctx.inputs.size());
  return *ctx.inputs[i];
}

Dataset MakeOut(const KernelContext& ctx, std::vector<Record> rows,
                double virtual_card) {
  Dataset out;
  out.rows = std::move(rows);
  out.virtual_cardinality = virtual_card;
  out.tuple_bytes = ctx.op->tuple_bytes;
  return out;
}

}  // namespace

double ScaleVirtual(double in_virtual, size_t in_rows, size_t out_rows,
                    double fallback_selectivity) {
  if (in_rows == 0) return in_virtual * fallback_selectivity;
  return in_virtual * static_cast<double>(out_rows) /
         static_cast<double>(in_rows);
}

void KernelRegistry::Register(std::string name, Kernel kernel) {
  kernels_[std::move(name)] = std::move(kernel);
}

const Kernel* KernelRegistry::Find(const std::string& name) const {
  auto it = kernels_.find(name);
  return it == kernels_.end() ? nullptr : &it->second;
}

KernelRegistry& KernelRegistry::Global() {
  static KernelRegistry* registry = new KernelRegistry();
  return *registry;
}

StatusOr<Dataset> DefaultKernel(const KernelContext& ctx) {
  const LogicalOperator& op = *ctx.op;
  switch (op.kind) {
    case LogicalOpKind::kTextFileSource:
    case LogicalOpKind::kCollectionSource:
    case LogicalOpKind::kTableSource:
      return Status::FailedPrecondition(
          "source " + op.name + " has no dataset bound in the DataCatalog");

    case LogicalOpKind::kFilter: {
      const Dataset& in = In(ctx, 0);
      const uint64_t threshold =
          static_cast<uint64_t>(op.selectivity * 1e6);
      std::vector<Record> rows;
      rows.reserve(static_cast<size_t>(in.rows.size() * op.selectivity) + 1);
      for (size_t i = 0; i < in.rows.size(); ++i) {
        if (MixHash(static_cast<uint64_t>(in.rows[i].key), i) % 1000000 <
            threshold) {
          rows.push_back(in.rows[i]);
        }
      }
      const double virt = ScaleVirtual(in.virtual_cardinality, in.rows.size(),
                                       rows.size(), op.selectivity);
      return MakeOut(ctx, std::move(rows), virt);
    }

    case LogicalOpKind::kMap:
    case LogicalOpKind::kProject:
    case LogicalOpKind::kCache:
    case LogicalOpKind::kBroadcast:
    case LogicalOpKind::kLoopBegin:
    case LogicalOpKind::kLoopEnd:
    case LogicalOpKind::kCollectionSink:
    case LogicalOpKind::kFileSink: {
      const Dataset& in = In(ctx, 0);
      return MakeOut(ctx, in.rows, in.virtual_cardinality);
    }

    case LogicalOpKind::kFlatMap: {
      // Fan-out of `selectivity` copies per row (fractional part resolved by
      // hashing), physically capped.
      const Dataset& in = In(ctx, 0);
      std::vector<Record> rows;
      const double fan = std::max(op.selectivity, 0.0);
      for (size_t i = 0; i < in.rows.size() && rows.size() < kPhysicalRowCap;
           ++i) {
        auto copies = static_cast<size_t>(fan);
        const double frac = fan - std::floor(fan);
        if (MixHash(i, 0x9d) % 1000000 < static_cast<uint64_t>(frac * 1e6)) {
          ++copies;
        }
        for (size_t c = 0; c < copies && rows.size() < kPhysicalRowCap; ++c) {
          Record r = in.rows[i];
          r.key = static_cast<int64_t>(MixHash(r.key, c));
          rows.push_back(std::move(r));
        }
      }
      return MakeOut(ctx, std::move(rows), in.virtual_cardinality * fan);
    }

    case LogicalOpKind::kSort: {
      const Dataset& in = In(ctx, 0);
      std::vector<Record> rows = in.rows;
      std::sort(rows.begin(), rows.end(),
                [](const Record& a, const Record& b) {
                  return std::tie(a.key, a.num) < std::tie(b.key, b.num);
                });
      return MakeOut(ctx, std::move(rows), in.virtual_cardinality);
    }

    case LogicalOpKind::kDistinct: {
      const Dataset& in = In(ctx, 0);
      std::unordered_set<std::string> seen;
      std::vector<Record> rows;
      for (const Record& r : in.rows) {
        std::string fingerprint = std::to_string(r.key) + "|" + r.text;
        if (seen.insert(std::move(fingerprint)).second) rows.push_back(r);
      }
      const double virt = ScaleVirtual(in.virtual_cardinality, in.rows.size(),
                                       rows.size(), op.selectivity);
      return MakeOut(ctx, std::move(rows), virt);
    }

    case LogicalOpKind::kCount: {
      const Dataset& in = In(ctx, 0);
      Record r;
      r.num = in.virtual_cardinality;
      return MakeOut(ctx, {std::move(r)}, 1.0);
    }

    case LogicalOpKind::kGlobalReduce: {
      const Dataset& in = In(ctx, 0);
      Record r;
      size_t dim = 0;
      for (const Record& row : in.rows) {
        r.num += row.num;
        dim = std::max(dim, row.vec.size());
      }
      r.vec.assign(dim, 0.0);
      for (const Record& row : in.rows) {
        for (size_t d = 0; d < row.vec.size(); ++d) r.vec[d] += row.vec[d];
      }
      return MakeOut(ctx, {std::move(r)}, 1.0);
    }

    case LogicalOpKind::kSample: {
      const Dataset& in = In(ctx, 0);
      size_t want =
          op.param > 0
              ? static_cast<size_t>(op.param)
              : static_cast<size_t>(op.selectivity * in.rows.size());
      want = std::min(want, in.rows.size());
      std::vector<Record> rows;
      rows.reserve(want);
      if (!in.rows.empty()) {
        for (size_t i = 0; i < want; ++i) {
          rows.push_back(in.rows[ctx.rng->NextBounded(in.rows.size())]);
        }
      }
      const double virt =
          op.param > 0
              ? std::min(op.param, in.virtual_cardinality)
              : op.selectivity * in.virtual_cardinality;
      return MakeOut(ctx, std::move(rows), virt);
    }

    case LogicalOpKind::kReduceBy:
    case LogicalOpKind::kGroupBy: {
      const Dataset& in = In(ctx, 0);
      std::unordered_map<int64_t, Record> groups;
      for (const Record& r : in.rows) {
        auto [it, inserted] = groups.try_emplace(r.key, r);
        if (!inserted) it->second.num += r.num;
      }
      std::vector<Record> rows;
      rows.reserve(groups.size());
      for (auto& [key, r] : groups) rows.push_back(std::move(r));
      std::sort(rows.begin(), rows.end(),
                [](const Record& a, const Record& b) { return a.key < b.key; });
      const double virt = ScaleVirtual(in.virtual_cardinality, in.rows.size(),
                                       rows.size(), op.selectivity);
      return MakeOut(ctx, std::move(rows), virt);
    }

    case LogicalOpKind::kJoin: {
      const Dataset& left = In(ctx, 0);
      const Dataset& right = In(ctx, 1);
      // Build on the smaller physical side.
      const bool build_left = left.rows.size() <= right.rows.size();
      const Dataset& build = build_left ? left : right;
      const Dataset& probe = build_left ? right : left;
      std::unordered_multimap<int64_t, const Record*> table;
      table.reserve(build.rows.size());
      for (const Record& r : build.rows) table.emplace(r.key, &r);
      std::vector<Record> rows;
      for (const Record& r : probe.rows) {
        auto [lo, hi] = table.equal_range(r.key);
        for (auto it = lo; it != hi && rows.size() < kPhysicalRowCap; ++it) {
          Record joined = r;
          joined.num += it->second->num;
          if (joined.text.empty()) joined.text = it->second->text;
          rows.push_back(std::move(joined));
        }
      }
      const double in_max =
          std::max(left.virtual_cardinality, right.virtual_cardinality);
      const double probe_rows = std::max<size_t>(probe.rows.size(), 1);
      const double virt =
          in_max * (static_cast<double>(rows.size()) / probe_rows);
      return MakeOut(ctx, std::move(rows), virt);
    }

    case LogicalOpKind::kUnion: {
      const Dataset& left = In(ctx, 0);
      const Dataset& right = In(ctx, 1);
      std::vector<Record> rows = left.rows;
      rows.insert(rows.end(), right.rows.begin(), right.rows.end());
      return MakeOut(ctx, std::move(rows),
                     left.virtual_cardinality + right.virtual_cardinality);
    }

    case LogicalOpKind::kCartesian: {
      const Dataset& left = In(ctx, 0);
      const Dataset& right = In(ctx, 1);
      std::vector<Record> rows;
      for (const Record& l : left.rows) {
        for (const Record& r : right.rows) {
          if (rows.size() >= kPhysicalRowCap) break;
          Record joined = l;
          joined.num += r.num;
          rows.push_back(std::move(joined));
        }
      }
      return MakeOut(ctx, std::move(rows),
                     left.virtual_cardinality * right.virtual_cardinality *
                         std::max(op.selectivity, 1e-12));
    }

    case LogicalOpKind::kKindCount:
      break;
  }
  return Status::Internal("no default kernel for operator " + op.name);
}

}  // namespace robopt
