#ifndef ROBOPT_EXEC_EXECUTOR_H_
#define ROBOPT_EXEC_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "exec/fault.h"
#include "exec/kernel.h"
#include "exec/platform_health.h"
#include "exec/record.h"
#include "exec/virtual_cost.h"
#include "obs/profile.h"
#include "platform/execution_plan.h"

namespace robopt {

/// Outcome of running an execution plan.
struct ExecResult {
  /// Output dataset of the (first) sink.
  Dataset output;
  /// Virtual-clock cost of the run (out-of-memory plans carry +inf).
  /// Fault-layer overheads — retry re-runs, backoff, slowdown rules — are
  /// folded into total_s (itemized in `faults`).
  CostBreakdown cost;
  /// Observed per-operator virtual cardinalities (the "real cardinalities"
  /// the paper injects into its optimizers).
  Cardinalities observed;
  /// Attempt / latency accounting under fault injection (all zero when the
  /// FaultPlan is empty).
  FaultStats faults;
  /// Per-call executor profile (per-operator wall/virtual time, attempts,
  /// conversion seconds). Filled when ExecutorOptions::obs.profile is set;
  /// all-zero with profile.enabled == false otherwise.
  ExecProfile profile;
};

/// Observes completed executions. The serving layer implements this to turn
/// every really-executed plan into a feedback event (plan vector + measured
/// runtime) for the online retraining loop — the paper's "observing patterns
/// in the execution logs", closed while queries keep flowing.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;

  /// Called once per successful Execute() with the plan and its outcome
  /// (OOM runs included: `result.cost.oom` is set and total_s is +inf).
  /// May be invoked from whatever thread ran Execute(); implementations
  /// must be thread-safe if the executor is shared.
  virtual void OnExecution(const ExecutionPlan& plan,
                           const ExecResult& result) = 0;

  /// Called once per Execute() that fails in the fault layer (circuit
  /// breaker open, retries exhausted, permanent injected fault) with the
  /// structured report — failed runs must not be invisible to the feedback
  /// loop. Plan-shape errors (validation, missing kernels) do not report
  /// here; they are caller bugs, not platform failures. Default: no-op.
  virtual void OnExecutionFailure(const ExecutionPlan& plan,
                                  const FailureReport& report) {
    (void)plan;
    (void)report;
  }
};

/// Options for Execute().
struct ExecutorOptions {
  uint64_t seed = 42;
  /// When set, every successful Execute() reports its plan and result here
  /// (after the cost has been charged), and every fault-layer failure
  /// reports through OnExecutionFailure. Must outlive the executor.
  ExecutionObserver* observer = nullptr;
  /// Deterministic fault-injection scenario (empty = no faults injected).
  FaultPlan fault_plan;
  /// Retry policy for injected *transient* faults. Real kernel errors are
  /// deterministic logic errors and are never retried.
  RetryPolicy retry;
  /// Optional shared circuit-breaker registry. When set, every operator run
  /// is gated on its platform's breaker (an open breaker fails the
  /// execution fast), operator outcomes — including OOMs — feed the breaker
  /// state, and each execution's virtual runtime advances the registry's
  /// virtual clock. Must outlive the executor; safe to share across
  /// concurrently executing executors.
  PlatformHealth* health = nullptr;
  /// Observability sinks: hot-path metrics, an "execute" span tree (one
  /// span per operator, stamped with both the wall and the virtual clock),
  /// and/or a filled ExecResult::profile. All off by default; the computed
  /// output, cost and every stat are bit-identical with observability on or
  /// off. Metrics are safe to share across concurrently executing
  /// executors (sharded atomics); the profile is per-call, never shared.
  ObsOptions obs;
};

/// The multi-engine executor: runs an execution plan's kernels over real
/// in-memory data (loops included) while a virtual clock — VirtualCost —
/// charges platform-dependent time. This is the repository's substitute for
/// the paper's Spark/Flink/Java/Postgres cluster: results are genuinely
/// computed; runtimes are simulated deterministically (see DESIGN.md).
class Executor {
 public:
  /// All pointers must outlive the executor. `kernels` may be null, in which
  /// case only the global registry and default kernels are used.
  Executor(const PlatformRegistry* registry, const VirtualCost* cost,
           const KernelRegistry* kernels = nullptr,
           ExecutorOptions options = {});

  /// Runs the plan. Source operators read from `catalog`. Loops execute for
  /// real (kernels see each iteration); time is charged by the virtual
  /// clock. An OOM plan returns OK with cost.oom set and +inf total_s.
  ///
  /// Fault layer: when a FaultPlan / PlatformHealth is configured, a run
  /// that exhausts its retries, hits a permanent fault, or is rejected by
  /// an open breaker returns Unavailable; the structured FailureReport goes
  /// to `failure` (if non-null) and to the observer's OnExecutionFailure.
  StatusOr<ExecResult> Execute(const ExecutionPlan& plan,
                               const DataCatalog& catalog) const {
    return Execute(plan, catalog, nullptr);
  }
  StatusOr<ExecResult> Execute(const ExecutionPlan& plan,
                               const DataCatalog& catalog,
                               FailureReport* failure) const;

  /// Analytic fast path: virtual runtime from cardinalities alone, no data
  /// touched. TDGEN uses this to label thousands of synthetic jobs; it
  /// agrees with Execute() whenever the cardinalities match.
  CostBreakdown Simulate(const ExecutionPlan& plan,
                         const Cardinalities& cards) const {
    return cost_->PlanCost(plan, cards);
  }

  const VirtualCost& cost_model() const { return *cost_; }

 private:
  StatusOr<Dataset> RunOp(const ExecutionPlan& plan, OperatorId id,
                          const std::vector<Dataset>& outputs,
                          const DataCatalog& catalog, Rng* rng,
                          int iteration) const;

  const PlatformRegistry* registry_;
  const VirtualCost* cost_;
  const KernelRegistry* kernels_;
  ExecutorOptions options_;
};

}  // namespace robopt

#endif  // ROBOPT_EXEC_EXECUTOR_H_
