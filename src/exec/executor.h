#ifndef ROBOPT_EXEC_EXECUTOR_H_
#define ROBOPT_EXEC_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "exec/kernel.h"
#include "exec/record.h"
#include "exec/virtual_cost.h"
#include "platform/execution_plan.h"

namespace robopt {

/// Outcome of running an execution plan.
struct ExecResult {
  /// Output dataset of the (first) sink.
  Dataset output;
  /// Virtual-clock cost of the run (out-of-memory plans carry +inf).
  CostBreakdown cost;
  /// Observed per-operator virtual cardinalities (the "real cardinalities"
  /// the paper injects into its optimizers).
  Cardinalities observed;
};

/// Observes completed executions. The serving layer implements this to turn
/// every really-executed plan into a feedback event (plan vector + measured
/// runtime) for the online retraining loop — the paper's "observing patterns
/// in the execution logs", closed while queries keep flowing.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;

  /// Called once per successful Execute() with the plan and its outcome
  /// (OOM runs included: `result.cost.oom` is set and total_s is +inf).
  /// May be invoked from whatever thread ran Execute(); implementations
  /// must be thread-safe if the executor is shared.
  virtual void OnExecution(const ExecutionPlan& plan,
                           const ExecResult& result) = 0;
};

/// Options for Execute().
struct ExecutorOptions {
  uint64_t seed = 42;
  /// When set, every successful Execute() reports its plan and result here
  /// (after the cost has been charged). Must outlive the executor.
  ExecutionObserver* observer = nullptr;
};

/// The multi-engine executor: runs an execution plan's kernels over real
/// in-memory data (loops included) while a virtual clock — VirtualCost —
/// charges platform-dependent time. This is the repository's substitute for
/// the paper's Spark/Flink/Java/Postgres cluster: results are genuinely
/// computed; runtimes are simulated deterministically (see DESIGN.md).
class Executor {
 public:
  /// All pointers must outlive the executor. `kernels` may be null, in which
  /// case only the global registry and default kernels are used.
  Executor(const PlatformRegistry* registry, const VirtualCost* cost,
           const KernelRegistry* kernels = nullptr,
           ExecutorOptions options = {});

  /// Runs the plan. Source operators read from `catalog`. Loops execute for
  /// real (kernels see each iteration); time is charged by the virtual
  /// clock. An OOM plan returns OK with cost.oom set and +inf total_s.
  StatusOr<ExecResult> Execute(const ExecutionPlan& plan,
                               const DataCatalog& catalog) const;

  /// Analytic fast path: virtual runtime from cardinalities alone, no data
  /// touched. TDGEN uses this to label thousands of synthetic jobs; it
  /// agrees with Execute() whenever the cardinalities match.
  CostBreakdown Simulate(const ExecutionPlan& plan,
                         const Cardinalities& cards) const {
    return cost_->PlanCost(plan, cards);
  }

  const VirtualCost& cost_model() const { return *cost_; }

 private:
  StatusOr<Dataset> RunOp(const ExecutionPlan& plan, OperatorId id,
                          const std::vector<Dataset>& outputs,
                          const DataCatalog& catalog, Rng* rng,
                          int iteration) const;

  const PlatformRegistry* registry_;
  const VirtualCost* cost_;
  const KernelRegistry* kernels_;
  ExecutorOptions options_;
};

}  // namespace robopt

#endif  // ROBOPT_EXEC_EXECUTOR_H_
