#include "exec/fault.h"

#include "common/rng.h"
#include "obs/metrics.h"

namespace robopt {

void FaultStats::ExportTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  auto add = [registry](const char* name, uint64_t n) {
    if (n == 0) return;
    if (Counter* counter = registry->GetCounter(name)) counter->Add(n);
  };
  add("robopt_fault_attempts_total", static_cast<uint64_t>(attempts));
  add("robopt_fault_retries_total", static_cast<uint64_t>(retries));
  add("robopt_fault_injected_total", static_cast<uint64_t>(faults_injected));
  // Virtual-time overheads are fractional seconds, so they accumulate into
  // gauges (Add is a CAS loop — fine: ExportTo is a per-call tail, not a
  // per-operator hot path).
  auto add_s = [registry](const char* name, double s) {
    if (s == 0.0) return;
    if (Gauge* gauge = registry->GetGauge(name)) gauge->Add(s);
  };
  add_s("robopt_fault_backoff_virtual_seconds", backoff_s);
  add_s("robopt_fault_retry_virtual_seconds", retry_s);
  add_s("robopt_fault_slowdown_virtual_seconds", slowdown_s);
}
namespace {

/// splitmix64 finalizer: decorrelates the packed coordinate words so that
/// neighboring (profile, invocation, attempt) cells draw independently.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool FaultMatches(const FaultProfile& profile, PlatformId platform,
                  LogicalOpKind kind) {
  if (profile.platform != kAnyPlatform &&
      profile.platform != static_cast<int>(platform)) {
    return false;
  }
  if (profile.kind != kAnyOpKind && profile.kind != static_cast<int>(kind)) {
    return false;
  }
  return true;
}

FaultInjector::FaultInjector(const FaultPlan* plan)
    : plan_(plan), invocations_(plan->profiles.size(), 0) {}

double FaultInjector::Draw(size_t profile, uint32_t invocation, int attempt,
                           uint64_t salt) const {
  uint64_t key = Mix(plan_->seed ^ salt);
  key = Mix(key ^ (static_cast<uint64_t>(profile) << 32 | invocation));
  key = Mix(key ^ static_cast<uint64_t>(attempt));
  // One finishing pass through the library Rng keeps the draw quality of
  // xoshiro while the key above stays a pure function of the coordinates.
  return Rng(key).NextDouble();
}

FaultInjector::Decision FaultInjector::OnAttempt(PlatformId platform,
                                                 LogicalOpKind kind,
                                                 int attempt) {
  Decision decision;
  for (size_t i = 0; i < plan_->profiles.size(); ++i) {
    const FaultProfile& profile = plan_->profiles[i];
    if (!FaultMatches(profile, platform, kind)) continue;
    // Invocation counting: attempt 0 of each matching run is one logical
    // invocation; retries re-use its index.
    if (attempt == 0) ++invocations_[i];
    const uint32_t invocation = invocations_[i];
    bool fails = false;
    if (profile.fail_on_invocation > 0 &&
        invocation == static_cast<uint32_t>(profile.fail_on_invocation) &&
        (attempt == 0 || profile.permanent)) {
      fails = true;
    }
    if (!fails && profile.failure_rate > 0.0) {
      // Permanent faults draw once per invocation (attempt 0 decides);
      // transient faults re-draw per attempt so retries can succeed.
      const int draw_attempt = profile.permanent ? 0 : attempt;
      fails = Draw(i, invocation, draw_attempt, /*salt=*/0x0f41ULL) <
              profile.failure_rate;
    }
    if (fails && !decision.fail) {
      decision.fail = true;
      decision.permanent = profile.permanent;
      decision.profile = static_cast<int>(i);
    } else if (fails && profile.permanent) {
      decision.permanent = true;  // Any matching permanent rule is fatal.
    }
  }
  return decision;
}

double FaultInjector::JitterDraw(PlatformId platform, LogicalOpKind kind,
                                 int attempt) const {
  // Keyed off the current invocation index of the first matching profile so
  // the jitter sequence is reproducible but distinct per invocation.
  for (size_t i = 0; i < plan_->profiles.size(); ++i) {
    if (FaultMatches(plan_->profiles[i], platform, kind)) {
      return Draw(i, invocations_[i], attempt, /*salt=*/0x91773ULL);
    }
  }
  return Draw(0, 0, attempt, /*salt=*/0x91773ULL);
}

double FaultInjector::SlowdownFor(PlatformId platform,
                                  LogicalOpKind kind) const {
  double multiplier = 1.0;
  for (const FaultProfile& profile : plan_->profiles) {
    if (profile.slowdown > 1.0 && FaultMatches(profile, platform, kind)) {
      multiplier *= profile.slowdown;
    }
  }
  return multiplier;
}

}  // namespace robopt
