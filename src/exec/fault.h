#ifndef ROBOPT_EXEC_FAULT_H_
#define ROBOPT_EXEC_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "plan/logical_plan.h"
#include "platform/platform.h"

namespace robopt {

class MetricsRegistry;

/// Wildcard selectors for FaultProfile.
inline constexpr int kAnyPlatform = -1;
inline constexpr int kAnyOpKind = -1;

/// One failure/slowdown rule of a FaultPlan. A profile matches an operator
/// run when both selectors accept the operator's assigned platform and its
/// logical kind. Examples from the fault-plan grammar (see DESIGN.md):
///   {platform=0, kind=kAnyOpKind, fail_on_invocation=3}
///       -> fail the 3rd JavaStreams operator invocation (once; the retry
///          succeeds unless `permanent`).
///   {platform=1, kind=kAnyOpKind, failure_rate=0.1}
///       -> every Spark operator attempt fails with probability 10%.
///   {platform=1, kind=static_cast<int>(LogicalOpKind::kJoin), slowdown=2.0}
///       -> Spark joins take 2x their virtual time.
///   {platform=2, failure_rate=1.0, permanent=true}
///       -> platform 2 is dead: every attempt fails, retries never help.
struct FaultProfile {
  int platform = kAnyPlatform;  ///< Platform id, or kAnyPlatform.
  int kind = kAnyOpKind;        ///< LogicalOpKind value, or kAnyOpKind.
  /// Per-attempt probability of an injected transient failure. Draws are a
  /// pure function of (plan seed, profile, invocation, attempt), so a rerun
  /// of the same FaultPlan reproduces every failure byte-for-byte.
  double failure_rate = 0.0;
  /// If > 0: deterministically fail the first attempt of the N-th matching
  /// invocation (1-based, counted per profile within one Execute() call).
  int fail_on_invocation = 0;
  /// Permanent faults fail every attempt (a dead platform / poisoned
  /// operator); transient faults are re-drawn per attempt so retries can
  /// succeed.
  bool permanent = false;
  /// Virtual-clock multiplier on matching operators' run cost (1 = none).
  double slowdown = 1.0;
};

/// A seeded, deterministic fault-injection scenario. Empty = no faults.
/// Every failure and every jittered backoff is a pure function of the seed
/// and the (profile, invocation, attempt) coordinates, independent of thread
/// count and of concurrent Execute() calls: each call owns its own
/// invocation counters, so the same plan under the same FaultPlan yields a
/// byte-identical ExecResult / FailureReport everywhere.
struct FaultPlan {
  uint64_t seed = 0xfa017ULL;
  std::vector<FaultProfile> profiles;

  bool empty() const { return profiles.empty(); }
};

/// Operator-level retry policy for injected transient faults. Backoff is
/// charged to the *virtual* clock (ExecResult accounting), never slept.
struct RetryPolicy {
  /// Attempts per operator invocation (1 = no retries).
  int max_attempts = 3;
  double initial_backoff_s = 0.05;  ///< Virtual seconds before retry 1.
  double backoff_multiplier = 2.0;  ///< Exponential growth per retry.
  /// Each backoff is scaled by (1 + jitter * U[0,1)) with a deterministic,
  /// seed-derived draw.
  double jitter = 0.25;
};

/// Attempt / latency accounting of one Execute() call under fault injection.
struct FaultStats {
  int attempts = 0;         ///< Operator run attempts (retries included).
  int retries = 0;          ///< Attempts beyond the first per invocation.
  int faults_injected = 0;  ///< Injected failures encountered.
  double backoff_s = 0.0;   ///< Virtual seconds spent in retry backoff.
  double retry_s = 0.0;     ///< Virtual seconds re-running failed attempts.
  double slowdown_s = 0.0;  ///< Extra virtual seconds from slowdown rules.

  /// Accumulates this (per-call) struct into the registry's robopt_fault_*
  /// counters/gauges. The struct stays the source of truth for the call it
  /// describes; the registry aggregates across calls — and across threads —
  /// through its sharded atomics, which is the only sanctioned way to sum
  /// FaultStats from concurrent Execute() calls on a shared Executor.
  void ExportTo(MetricsRegistry* registry) const;
};

/// Structured description of an Execute() failure in the fault layer — the
/// input to re-optimize-on-failure recovery (the serving layer masks
/// `platform` out of the search and re-plans).
struct FailureReport {
  bool failed = false;
  PlatformId platform = 0;              ///< Platform blamed for the failure.
  OperatorId op = kInvalidOperatorId;   ///< Operator that failed.
  LogicalOpKind kind = LogicalOpKind::kMap;
  bool breaker_open = false;  ///< Rejected up front: circuit breaker open.
  bool permanent = false;     ///< A permanent (non-retryable) injected fault.
  int attempts = 0;           ///< Attempts made on the failing operator.
  double backoff_s = 0.0;     ///< Total virtual backoff of the whole call.
  std::string message;
};

/// Per-Execute()-call fault oracle: counts matching invocations per profile
/// and derives every probabilistic decision from the FaultPlan seed alone.
/// Not thread-safe — each Execute() call constructs its own injector, which
/// is exactly what makes concurrent executions deterministic.
class FaultInjector {
 public:
  /// `plan` must outlive the injector.
  explicit FaultInjector(const FaultPlan* plan);

  struct Decision {
    bool fail = false;
    bool permanent = false;
    int profile = -1;  ///< Index of the failing profile (-1 = none).
  };

  /// Decides the fate of one operator run attempt. Matching invocations are
  /// counted on attempt 0 only, so all retries of one invocation share its
  /// invocation index (and `fail_on_invocation` counts logical invocations,
  /// not attempts).
  Decision OnAttempt(PlatformId platform, LogicalOpKind kind, int attempt);

  /// Deterministic jitter draw in [0,1) for the backoff preceding
  /// `attempt`+1 of the current invocation of (platform, kind).
  double JitterDraw(PlatformId platform, LogicalOpKind kind,
                    int attempt) const;

  /// Product of all matching slowdown multipliers for (platform, kind);
  /// 1.0 when no slowdown rule matches.
  double SlowdownFor(PlatformId platform, LogicalOpKind kind) const;

 private:
  /// Uniform double in [0,1), pure function of (seed, profile, invocation,
  /// attempt, salt).
  double Draw(size_t profile, uint32_t invocation, int attempt,
              uint64_t salt) const;

  const FaultPlan* plan_;
  std::vector<uint32_t> invocations_;  ///< Per-profile match counters.
};

/// True when `profile` applies to an operator of `kind` on `platform`.
bool FaultMatches(const FaultProfile& profile, PlatformId platform,
                  LogicalOpKind kind);

}  // namespace robopt

#endif  // ROBOPT_EXEC_FAULT_H_
