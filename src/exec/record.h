#ifndef ROBOPT_EXEC_RECORD_H_
#define ROBOPT_EXEC_RECORD_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "plan/logical_plan.h"

namespace robopt {

/// One tuple flowing through the executor. A deliberately wide universal row:
/// workloads use the fields they need (text analytics use `text`, relational
/// use `key`/`num`, ML uses `vec`). This is a simulator, not a columnar
/// engine, so per-row overhead is acceptable.
struct Record {
  int64_t key = 0;
  double num = 0.0;
  std::string text;
  std::vector<double> vec;
};

/// A dataset is a *physical sample* of rows plus the *virtual cardinality*
/// it stands for. Kernels run on the physical rows (so results are real),
/// while the performance model charges costs against the virtual
/// cardinality — this is how the repo scales experiments to the paper's
/// terabyte range on one machine (see DESIGN.md, substitutions).
struct Dataset {
  std::vector<Record> rows;
  /// Number of tuples this dataset represents; >= rows.size() when the
  /// physical sample is capped.
  double virtual_cardinality = 0.0;
  /// Average serialized tuple size in bytes (drives movement/IO costs).
  double tuple_bytes = 16.0;

  /// virtual-to-physical scale factor (1.0 when uncapped).
  double Scale() const {
    if (rows.empty()) return 1.0;
    return virtual_cardinality / static_cast<double>(rows.size());
  }

  static Dataset Of(std::vector<Record> rows_in, double tuple_bytes_in = 16.0) {
    Dataset dataset;
    dataset.virtual_cardinality = static_cast<double>(rows_in.size());
    dataset.rows = std::move(rows_in);
    dataset.tuple_bytes = tuple_bytes_in;
    return dataset;
  }
};

/// Binds datasets to the source operators of a plan before execution.
struct DataCatalog {
  std::map<OperatorId, Dataset> by_op;

  void Bind(OperatorId id, Dataset dataset) {
    by_op[id] = std::move(dataset);
  }
};

}  // namespace robopt

#endif  // ROBOPT_EXEC_RECORD_H_
