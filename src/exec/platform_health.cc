#include "exec/platform_health.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/metrics.h"

namespace robopt {

const char* ToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

PlatformHealth::PlatformHealth(BreakerOptions options) : options_(options) {}

void PlatformHealth::MaybeHalfOpenLocked(int platform) {
  Breaker& breaker = breakers_[platform];
  if (breaker.state == BreakerState::kOpen &&
      now_s_ - breaker.opened_at_s >= options_.cooldown_s) {
    breaker.state = BreakerState::kHalfOpen;
    open_mask_.fetch_and(~(1ull << platform), std::memory_order_release);
  }
}

void PlatformHealth::TripLocked(int platform) {
  Breaker& breaker = breakers_[platform];
  breaker.state = BreakerState::kOpen;
  breaker.opened_at_s = now_s_;
  ++breaker.trips;
  open_mask_.fetch_or(1ull << platform, std::memory_order_release);
  trip_epoch_.fetch_add(1, std::memory_order_release);
}

bool PlatformHealth::AllowRequest(PlatformId platform) {
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& breaker = breakers_[platform];
  MaybeHalfOpenLocked(platform);
  if (breaker.state == BreakerState::kOpen) {
    ++breaker.rejected;
    return false;
  }
  return true;
}

void PlatformHealth::RecordSuccess(PlatformId platform) {
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& breaker = breakers_[platform];
  breaker.consecutive_failures = 0;
  if (breaker.state == BreakerState::kHalfOpen) {
    breaker.state = BreakerState::kClosed;
    ++breaker.recoveries;
  }
}

void PlatformHealth::RecordFailure(PlatformId platform) {
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& breaker = breakers_[platform];
  ++breaker.consecutive_failures;
  if (breaker.state == BreakerState::kHalfOpen) {
    TripLocked(platform);  // The probe failed: back to open, new cooldown.
    return;
  }
  if (breaker.state == BreakerState::kClosed &&
      breaker.consecutive_failures >= options_.failure_threshold) {
    TripLocked(platform);
  }
}

void PlatformHealth::AdvanceClock(double virtual_seconds) {
  if (!std::isfinite(virtual_seconds) || virtual_seconds <= 0.0) return;
  std::lock_guard<std::mutex> lock(mu_);
  now_s_ += virtual_seconds;
}

double PlatformHealth::now_s() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_s_;
}

BreakerState PlatformHealth::state(PlatformId platform) {
  std::lock_guard<std::mutex> lock(mu_);
  MaybeHalfOpenLocked(platform);
  return breakers_[platform].state;
}

BreakerSnapshot PlatformHealth::snapshot(PlatformId platform) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Breaker& breaker = breakers_[platform];
  BreakerSnapshot out;
  out.state = breaker.state;
  out.consecutive_failures = breaker.consecutive_failures;
  out.trips = breaker.trips;
  out.recoveries = breaker.recoveries;
  out.rejected = breaker.rejected;
  out.opened_at_s = breaker.opened_at_s;
  return out;
}

uint64_t PlatformHealth::OpenMask() {
  // Healthy fast path: no breaker open means no cooldown transition to
  // apply, so the per-Optimize() call skips the lock entirely.
  if (open_mask_.load(std::memory_order_acquire) == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t mask = 0;
  for (int i = 0; i < kMaxPlatforms; ++i) {
    MaybeHalfOpenLocked(i);
    if (breakers_[i].state == BreakerState::kOpen) mask |= 1ull << i;
  }
  return mask;
}

uint64_t PlatformHealth::total_trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const Breaker& breaker : breakers_) total += breaker.trips;
  return total;
}

uint64_t PlatformHealth::total_recoveries() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const Breaker& breaker : breakers_) total += breaker.recoveries;
  return total;
}

void PlatformHealth::ExportTo(MetricsRegistry* registry, int num_platforms) {
  if (registry == nullptr) return;
  registry->Set("robopt_breaker_virtual_clock_seconds", now_s());
  const int count = std::min(num_platforms, static_cast<int>(kMaxPlatforms));
  for (int i = 0; i < count; ++i) {
    // state() first: it applies the lazy open -> half-open transition so
    // the export never shows a breaker as open past its cooldown.
    const BreakerState current = state(static_cast<PlatformId>(i));
    const BreakerSnapshot snap = snapshot(static_cast<PlatformId>(i));
    const std::string label = "{platform=\"" + std::to_string(i) + "\"}";
    registry->Set("robopt_breaker_state" + label,
                  static_cast<double>(static_cast<int>(current)));
    registry->Set("robopt_breaker_consecutive_failures" + label,
                  snap.consecutive_failures);
    registry->Set("robopt_breaker_trips" + label,
                  static_cast<double>(snap.trips));
    registry->Set("robopt_breaker_recoveries" + label,
                  static_cast<double>(snap.recoveries));
    registry->Set("robopt_breaker_rejected" + label,
                  static_cast<double>(snap.rejected));
  }
}

}  // namespace robopt
