#include "exec/virtual_cost.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"

namespace robopt {

bool IsShuffleKind(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kReduceBy:
    case LogicalOpKind::kGroupBy:
    case LogicalOpKind::kJoin:
    case LogicalOpKind::kSort:
    case LogicalOpKind::kDistinct:
    case LogicalOpKind::kCartesian:
      return true;
    default:
      return false;
  }
}

VirtualCost::VirtualCost(const PlatformRegistry* registry,
                         VirtualCostOptions options)
    : registry_(registry), options_(options) {
  profiles_.reserve(registry->num_platforms());
  for (const Platform& platform : registry->platforms()) {
    profiles_.push_back(PlatformProfile::ForName(platform.name));
  }
}

void VirtualCost::SetProfile(PlatformId id, PlatformProfile profile) {
  ROBOPT_CHECK(id < profiles_.size());
  profiles_[id] = std::move(profile);
}

double VirtualCost::Noise(OperatorId id, PlatformId platform) const {
  if (options_.noise_sigma <= 0.0) return 1.0;
  Rng rng(options_.noise_seed ^ (static_cast<uint64_t>(id) << 32) ^
          (static_cast<uint64_t>(platform) << 16));
  return std::exp(options_.noise_sigma * rng.NextGaussian());
}

bool VirtualCost::ExceedsMemory(const ExecutionPlan& plan, OperatorId id,
                                double in_tuples) const {
  const PlatformId platform = plan.PlatformOf(id);
  const Platform& desc = registry_->platform(platform);
  // Distributed engines and disk-based DBMSs spill; only the single-node
  // in-memory engine aborts (the paper's Fig. 11 shows OOM bars for Java
  // only).
  if (desc.cls != PlatformClass::kSingleNode) return false;
  const double bytes = in_tuples * plan.logical_plan().op(id).tuple_bytes;
  return bytes > profiles_[platform].mem_capacity_bytes;
}

double VirtualCost::OpCost(const ExecutionPlan& plan, OperatorId id,
                           double in_tuples, double out_tuples,
                           int iteration) const {
  return OpCostRaw(plan.logical_plan().op(id), plan.alt(id), in_tuples,
                   out_tuples, iteration);
}

double VirtualCost::OpCostRaw(const LogicalOperator& op,
                              const ExecutionAlt& alt, double in_tuples,
                              double out_tuples, int iteration) const {
  const PlatformProfile& prof = profiles_[alt.platform];
  const double bytes_in = in_tuples * op.tuple_bytes;
  const double bytes_out = out_tuples * op.tuple_bytes;

  // Broadcast: fixed materialization + per-byte distribution; no stage.
  if (op.kind == LogicalOpKind::kBroadcast) {
    return prof.broadcast_fixed_s +
           bytes_in * prof.broadcast_ns_per_byte * 1e-9;
  }

  // Cache: pay materialization on the first execution, (almost) nothing on
  // later loop iterations.
  if (op.kind == LogicalOpKind::kCache) {
    if (iteration > 0) return 0.0;
    return prof.stage_overhead_s +
           (in_tuples * prof.tuple_cpu_ns * 0.4 + bytes_in * prof.io_ns_per_byte) *
               1e-9 / prof.EffectiveParallelism(in_tuples);
  }

  // Sample: variant-dependent, iteration-dependent (the SGD story of
  // Section VII-C2). Variant 0 is the stateful ShufflePartitionSample: it
  // shuffles its input once and then reads batches; variant 1 caches first
  // but loses the sampler's state, re-shuffling every iteration.
  if (op.kind == LogicalOpKind::kSample) {
    // The sampler shuffles one partition, not the whole input.
    const double partition_tuples =
        in_tuples / std::max(prof.EffectiveParallelism(in_tuples), 1.0);
    const double shuffle_s =
        prof.stage_overhead_s +
        partition_tuples * prof.shuffle_ns_per_tuple * 0.5 * 1e-9;
    const double batch_read_s =
        prof.stage_overhead_s * 0.1 + out_tuples * prof.tuple_cpu_ns * 1e-9;
    if (alt.variant == 0) {
      // Stateful: shuffle once, then sequential batch reads.
      return (iteration == 0 ? shuffle_s : 0.0) + batch_read_s;
    }
    // Cache-based variant: the cache write is paid once, but caching
    // destroys the sampler's state, so part of the partition re-shuffles on
    // every iteration (the paper's SGD finding).
    const double cache_write_s =
        (iteration == 0)
            ? bytes_in * prof.io_ns_per_byte * 1e-9 /
                  prof.EffectiveParallelism(in_tuples)
            : 0.0;
    const double reshuffle_s =
        (iteration == 0 ? 1.0 : 0.35) * shuffle_s;
    return cache_write_s + reshuffle_s + batch_read_s;
  }

  double work_ns = in_tuples * prof.tuple_cpu_ns *
                   prof.udf_factor[static_cast<int>(op.udf)] *
                   prof.KindMultiplier(op.kind);
  if (IsShuffleKind(op.kind)) {
    double spill = 1.0;
    if (bytes_in > prof.mem_capacity_bytes) spill = prof.spill_factor;
    work_ns += in_tuples * prof.shuffle_ns_per_tuple *
               std::log2(std::max(in_tuples, 2.0)) * spill;
  }
  if (IsSource(op.kind)) {
    work_ns += bytes_out * prof.io_ns_per_byte;
  }
  if (IsSink(op.kind)) {
    work_ns += bytes_in * prof.io_ns_per_byte;
  }
  const double par = prof.EffectiveParallelism(std::max(in_tuples, out_tuples));
  return (prof.stage_overhead_s + work_ns * 1e-9 / par) *
         Noise(op.id, alt.platform);
}

double VirtualCost::ConversionCost(const ConversionInstance& conv,
                                   double tuples, double tuple_bytes) const {
  const PlatformProfile& from = profiles_[conv.from_platform];
  const PlatformProfile& to = profiles_[conv.to_platform];
  const double bytes = tuples * tuple_bytes;
  double rate_ns = 0.5 * (from.move_ns_per_byte + to.move_ns_per_byte);
  if (conv.kind == ConversionKind::kExchange) {
    rate_ns *= 2.0;  // Materialize to shared storage, then re-read.
  }
  return from.move_fixed_s + to.move_fixed_s + bytes * rate_ns * 1e-9;
}

CostBreakdown VirtualCost::PlanCost(const ExecutionPlan& plan,
                                    const Cardinalities& cards) const {
  const LogicalPlan& logical = plan.logical_plan();
  CostBreakdown out;
  out.op_seconds.assign(logical.num_operators(), 0.0);

  // Job startup per distinct platform touched.
  for (PlatformId platform : plan.PlatformsUsed()) {
    out.startup_s += profiles_[platform].startup_s;
  }

  for (const LogicalOperator& op : logical.operators()) {
    const double in_tuples = cards.input[op.id];
    const double out_tuples = cards.output[op.id];
    if (ExceedsMemory(plan, op.id, in_tuples)) {
      out.oom = true;
      out.failure = "out-of-memory on " +
                    registry_->platform(plan.PlatformOf(op.id)).name +
                    " at " + op.name;
      out.failed_op = op.id;
      out.total_s = std::numeric_limits<double>::infinity();
      return out;
    }
    const int iterations = logical.LoopIterations(op.id);
    double op_s = OpCost(plan, op.id, in_tuples, out_tuples, /*iteration=*/0);
    if (iterations > 1) {
      op_s += (iterations - 1) *
              OpCost(plan, op.id, in_tuples, out_tuples, /*iteration=*/1);
    }
    // Per-iteration loop scheduling overhead, charged on the LoopBegin.
    if (op.kind == LogicalOpKind::kLoopBegin) {
      op_s += profiles_[plan.PlatformOf(op.id)].loop_overhead_s *
              std::max(1, op.loop_iterations);
    }
    out.op_seconds[op.id] = op_s;
  }

  for (const ConversionInstance& conv : plan.Conversions()) {
    const double tuples = cards.output[conv.from_op];
    const double tuple_bytes = logical.op(conv.from_op).tuple_bytes;
    // Data crossing platforms inside a loop moves every iteration;
    // loop-invariant inputs move once.
    const int iterations = std::min(logical.LoopIterations(conv.from_op),
                                    logical.LoopIterations(conv.to_op));
    // Collecting into a bounded-memory platform can itself OOM.
    const Platform& to_desc = registry_->platform(conv.to_platform);
    if (to_desc.cls == PlatformClass::kSingleNode &&
        tuples * tuple_bytes > profiles_[conv.to_platform].mem_capacity_bytes) {
      out.oom = true;
      out.failure = "out-of-memory moving data into " + to_desc.name;
      out.failed_op = conv.to_op;
      out.total_s = std::numeric_limits<double>::infinity();
      return out;
    }
    out.conversion_s += iterations * ConversionCost(conv, tuples, tuple_bytes);
  }

  out.total_s = out.startup_s + out.conversion_s;
  for (double s : out.op_seconds) out.total_s += s;
  return out;
}

}  // namespace robopt
