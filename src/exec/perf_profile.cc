#include "exec/perf_profile.h"

#include <functional>

namespace robopt {
namespace {

PlatformProfile JavaProfile() {
  PlatformProfile p;
  p.name = "Java";
  p.startup_s = 0.02;
  p.stage_overhead_s = 0.0008;
  p.tuple_cpu_ns = 160.0;
  p.parallelism = 1.0;
  p.parallel_chunk = 1.0;
  p.shuffle_ns_per_tuple = 90.0;  // In-memory hash tables, no network.
  p.io_ns_per_byte = 1.4;
  p.mem_capacity_bytes = 24e9;  // Single JVM with 20 GB heap + overheads.
  p.loop_overhead_s = 0.0004;   // A plain for-loop.
  p.broadcast_fixed_s = 0.0004;
  p.broadcast_ns_per_byte = 0.3;
  p.move_ns_per_byte = 1.0;
  p.move_fixed_s = 0.002;
  return p;
}

PlatformProfile SparkProfile() {
  PlatformProfile p;
  p.name = "Spark";
  p.startup_s = 2.8;
  p.stage_overhead_s = 0.09;
  p.tuple_cpu_ns = 130.0;  // Good codegen for per-tuple transforms.
  p.parallelism = 40.0;    // 10 nodes x 4 cores.
  p.parallel_chunk = 20000.0;
  p.shuffle_ns_per_tuple = 340.0;
  p.io_ns_per_byte = 0.5;  // Parallel HDFS scan.
  p.mem_capacity_bytes = 200e9;  // Cluster memory; spills beyond.
  p.spill_factor = 3.0;
  p.loop_overhead_s = 0.12;  // Driver schedules a job per iteration.
  p.broadcast_fixed_s = 0.09;
  p.broadcast_ns_per_byte = 2.0;
  p.move_ns_per_byte = 2.5;  // Collect funnels through the driver.
  p.move_fixed_s = 0.05;
  p.SetKindMultiplier(LogicalOpKind::kMap, 0.85);
  p.SetKindMultiplier(LogicalOpKind::kFlatMap, 0.85);
  return p;
}

PlatformProfile FlinkProfile() {
  PlatformProfile p;
  p.name = "Flink";
  p.startup_s = 1.9;
  p.stage_overhead_s = 0.05;  // Pipelined execution, fewer stage barriers.
  p.tuple_cpu_ns = 150.0;
  p.parallelism = 40.0;
  p.parallel_chunk = 20000.0;
  p.shuffle_ns_per_tuple = 370.0;
  p.io_ns_per_byte = 0.55;
  p.mem_capacity_bytes = 160e9;
  p.spill_factor = 3.2;
  p.loop_overhead_s = 0.03;  // Native iterations.
  p.broadcast_fixed_s = 0.03;
  p.broadcast_ns_per_byte = 1.5;
  p.move_ns_per_byte = 2.2;
  p.move_fixed_s = 0.04;
  p.SetKindMultiplier(LogicalOpKind::kReduceBy, 0.9);
  p.SetKindMultiplier(LogicalOpKind::kGroupBy, 0.9);
  return p;
}

PlatformProfile PostgresProfile() {
  PlatformProfile p;
  p.name = "Postgres";
  p.startup_s = 0.08;
  p.stage_overhead_s = 0.004;
  p.tuple_cpu_ns = 210.0;
  p.parallelism = 4.0;
  p.parallel_chunk = 50000.0;
  p.shuffle_ns_per_tuple = 260.0;  // Local sorts/hashes, no network.
  p.io_ns_per_byte = 1.1;          // Buffered table scans.
  p.mem_capacity_bytes = 64e9;     // Disk-backed; aborts only far beyond.
  p.spill_factor = 2.0;
  p.loop_overhead_s = 0.6;  // Iteration via repeated statements: painful.
  p.broadcast_fixed_s = 0.05;
  p.broadcast_ns_per_byte = 3.0;
  p.move_ns_per_byte = 4.0;  // COPY in/out of the DBMS.
  p.move_fixed_s = 0.08;
  // Relational operators are what a DBMS is good at; opaque UDFs are not.
  p.SetKindMultiplier(LogicalOpKind::kFilter, 0.35);
  p.SetKindMultiplier(LogicalOpKind::kProject, 0.3);
  p.SetKindMultiplier(LogicalOpKind::kJoin, 0.7);
  p.SetKindMultiplier(LogicalOpKind::kSort, 0.6);
  p.SetKindMultiplier(LogicalOpKind::kReduceBy, 0.7);
  p.SetKindMultiplier(LogicalOpKind::kGroupBy, 0.7);
  p.SetKindMultiplier(LogicalOpKind::kMap, 2.2);
  p.SetKindMultiplier(LogicalOpKind::kFlatMap, 2.5);
  return p;
}

PlatformProfile GraphXProfile() {
  PlatformProfile p;
  p.name = "GraphX";
  p.startup_s = 3.2;
  p.stage_overhead_s = 0.12;
  p.tuple_cpu_ns = 165.0;
  p.parallelism = 40.0;
  p.parallel_chunk = 20000.0;
  p.shuffle_ns_per_tuple = 390.0;
  p.io_ns_per_byte = 0.6;
  p.mem_capacity_bytes = 180e9;
  p.loop_overhead_s = 0.06;  // Pregel supersteps.
  p.broadcast_fixed_s = 0.08;
  p.broadcast_ns_per_byte = 2.0;
  p.move_ns_per_byte = 2.6;
  p.move_fixed_s = 0.06;
  p.SetKindMultiplier(LogicalOpKind::kJoin, 0.8);  // Edge-partition joins.
  return p;
}

}  // namespace

PlatformProfile PlatformProfile::ForName(const std::string& name) {
  if (name == "Java") return JavaProfile();
  if (name == "Spark") return SparkProfile();
  if (name == "Flink") return FlinkProfile();
  if (name == "Postgres") return PostgresProfile();
  if (name == "GraphX") return GraphXProfile();
  // Synthetic platforms ("P0", "P1", ...): start from a distributed profile
  // and perturb deterministically so platforms are similar-but-distinct, as
  // the paper's setup intends ("quite similar in terms of capability and
  // efficiency ... makes it harder for an optimizer to choose the fastest").
  PlatformProfile p = SparkProfile();
  p.name = name;
  const uint64_t h = std::hash<std::string>{}(name);
  const double jitter = 0.75 + 0.5 * static_cast<double>(h % 1000) / 1000.0;
  p.startup_s *= jitter;
  p.tuple_cpu_ns *= 2.0 - jitter * 0.9;
  p.shuffle_ns_per_tuple *= 0.8 + 0.4 * static_cast<double>((h >> 10) % 1000) / 1000.0;
  p.stage_overhead_s *= jitter;
  if (name == "P0") {
    // The first synthetic platform is single-node-flavored to keep the
    // small-vs-large crossover present in synthetic setups too.
    p.startup_s = 0.03;
    p.parallelism = 1.0;
    p.mem_capacity_bytes = 24e9;
  }
  return p;
}

}  // namespace robopt
