#ifndef ROBOPT_EXEC_PLATFORM_HEALTH_H_
#define ROBOPT_EXEC_PLATFORM_HEALTH_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

#include "platform/platform.h"

namespace robopt {

class MetricsRegistry;

/// Circuit-breaker state of one platform (the classic three-state machine).
enum class BreakerState : uint8_t {
  kClosed = 0,  ///< Healthy: requests flow, failures are counted.
  kOpen,        ///< Tripped: requests are rejected until the cooldown ends.
  kHalfOpen,    ///< Probing: requests flow; the next outcome decides.
};

const char* ToString(BreakerState state);

/// Per-platform breaker thresholds. Cooldown is measured on the registry's
/// *virtual* clock (AdvanceClock), the same clock the executor charges, so
/// breaker tests and benches are fully deterministic — no wall time.
struct BreakerOptions {
  /// Consecutive operator-level failures that trip a closed breaker.
  int failure_threshold = 5;
  /// Virtual seconds an open breaker waits before allowing a half-open
  /// probe.
  double cooldown_s = 30.0;
};

/// Read-only view of one breaker for stats and tests.
struct BreakerSnapshot {
  BreakerState state = BreakerState::kClosed;
  int consecutive_failures = 0;
  uint64_t trips = 0;       ///< closed/half-open -> open transitions.
  uint64_t recoveries = 0;  ///< half-open -> closed transitions.
  uint64_t rejected = 0;    ///< Requests refused while open.
  double opened_at_s = 0.0;
};

/// Thread-safe registry of per-platform circuit breakers over a shared
/// virtual clock. Executors call AllowRequest / RecordSuccess /
/// RecordFailure around every operator run and AdvanceClock with each
/// completed execution's virtual runtime; the serving layer reads
/// OpenMask() to mask dead platforms out of re-optimization.
///
/// State machine per platform:
///   closed --[failure_threshold consecutive failures]--> open
///   open   --[cooldown_s of virtual time]--> half-open (next request is
///            the probe; the transition happens lazily inside
///            AllowRequest/state/OpenMask)
///   half-open --[probe success]--> closed    (a recovery)
///   half-open --[probe failure]--> open      (a new trip, cooldown restarts)
class PlatformHealth {
 public:
  explicit PlatformHealth(BreakerOptions options = {});

  /// True when `platform` may serve a request. An open breaker whose
  /// cooldown has elapsed transitions to half-open and admits the request
  /// as its probe; otherwise the rejection is counted and false returned.
  bool AllowRequest(PlatformId platform);

  /// Records one successful operator run: resets the consecutive-failure
  /// count; closes a half-open breaker (a recovery).
  void RecordSuccess(PlatformId platform);

  /// Records one failed operator run (injected fault, OOM): increments the
  /// consecutive-failure count and trips the breaker at the threshold; a
  /// half-open breaker re-opens immediately.
  void RecordFailure(PlatformId platform);

  /// Advances the shared virtual clock (non-finite or negative deltas are
  /// ignored — an OOM's +inf cost must not fast-forward every cooldown).
  void AdvanceClock(double virtual_seconds);

  double now_s() const;

  /// Current state, applying the open -> half-open cooldown transition.
  BreakerState state(PlatformId platform);

  BreakerSnapshot snapshot(PlatformId platform) const;

  /// Bitmask (bit i = platform id i) of platforms whose breaker is open
  /// right now, after applying cooldown transitions. Half-open platforms
  /// are *not* included: the next query routed there is the probe.
  /// Lock-free when no breaker is open — the serving layer calls this on
  /// every Optimize(), so the healthy path must not contend on mu_.
  uint64_t OpenMask();

  uint64_t total_trips() const;
  uint64_t total_recoveries() const;

  /// Monotone counter bumped on every breaker trip, readable without the
  /// lock. Shards of the serving layer compare it against a cached value on
  /// request entry: unchanged (the overwhelmingly common case) means no new
  /// trips to reconcile against their plan caches, so the healthy hot path
  /// costs one relaxed load instead of a shared mutex.
  uint64_t trip_epoch() const {
    return trip_epoch_.load(std::memory_order_acquire);
  }

  /// Mirrors the first `num_platforms` breakers into per-platform
  /// robopt_breaker_* gauges (label suffix {platform="i"}) plus the shared
  /// virtual clock. Gauges are *Set* from snapshots — the breaker structs
  /// remain the source of truth and re-exporting is idempotent.
  void ExportTo(MetricsRegistry* registry, int num_platforms);

 private:
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    uint64_t trips = 0;
    uint64_t recoveries = 0;
    uint64_t rejected = 0;
    double opened_at_s = 0.0;
  };

  /// Applies the open -> half-open transition if the cooldown elapsed.
  /// Caller holds mu_.
  void MaybeHalfOpenLocked(int platform);
  void TripLocked(int platform);

  const BreakerOptions options_;
  mutable std::mutex mu_;  ///< Guards the clock and every breaker.
  double now_s_ = 0.0;
  std::array<Breaker, kMaxPlatforms> breakers_;
  /// Mirror of the open bits, written only under mu_ (set in TripLocked,
  /// cleared on open -> half-open). Read lock-free by OpenMask(): a zero
  /// mask means no breaker is open, hence no lazy transition to apply.
  std::atomic<uint64_t> open_mask_{0};
  /// Bumped in TripLocked; see trip_epoch().
  std::atomic<uint64_t> trip_epoch_{0};
};

}  // namespace robopt

#endif  // ROBOPT_EXEC_PLATFORM_HEALTH_H_
