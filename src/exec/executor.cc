#include "exec/executor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace robopt {

Executor::Executor(const PlatformRegistry* registry, const VirtualCost* cost,
                   const KernelRegistry* kernels, ExecutorOptions options)
    : registry_(registry),
      cost_(cost),
      kernels_(kernels),
      options_(options) {}

StatusOr<Dataset> Executor::RunOp(const ExecutionPlan& plan, OperatorId id,
                                  const std::vector<Dataset>& outputs,
                                  const DataCatalog& catalog, Rng* rng,
                                  int iteration) const {
  const LogicalPlan& logical = plan.logical_plan();
  const LogicalOperator& op = logical.op(id);

  // Sources pull from the catalog when bound; otherwise a named kernel may
  // synthesize the data.
  if (IsSource(op.kind)) {
    auto it = catalog.by_op.find(id);
    if (it != catalog.by_op.end()) {
      Dataset dataset = it->second;
      if (dataset.virtual_cardinality <= 0) {
        dataset.virtual_cardinality =
            static_cast<double>(dataset.rows.size());
      }
      return dataset;
    }
  }

  KernelContext ctx;
  ctx.op = &op;
  ctx.rng = rng;
  ctx.iteration = iteration;
  for (OperatorId parent : logical.parents(id)) {
    ctx.inputs.push_back(&outputs[parent]);
  }
  for (OperatorId parent : logical.side_parents(id)) {
    ctx.side_inputs.push_back(&outputs[parent]);
  }

  const Kernel* kernel = nullptr;
  if (!op.kernel.empty()) {
    if (kernels_ != nullptr) kernel = kernels_->Find(op.kernel);
    if (kernel == nullptr) kernel = KernelRegistry::Global().Find(op.kernel);
    if (kernel == nullptr) {
      return Status::NotFound("kernel '" + op.kernel + "' for operator " +
                              op.name);
    }
  }
  if (kernel != nullptr) return (*kernel)(ctx);
  return DefaultKernel(ctx);
}

StatusOr<ExecResult> Executor::Execute(const ExecutionPlan& plan,
                                       const DataCatalog& catalog,
                                       FailureReport* failure) const {
  const LogicalPlan& logical = plan.logical_plan();
  ROBOPT_RETURN_IF_ERROR(logical.Validate());
  ROBOPT_RETURN_IF_ERROR(plan.Validate());

  const int n = logical.num_operators();
  const std::vector<OperatorId> order = logical.TopologicalOrder();
  std::vector<Dataset> outputs(n);
  std::vector<uint8_t> done(n, 0);
  Rng rng(options_.seed);

  ExecResult result;
  result.observed.input.assign(n, 0.0);
  result.observed.output.assign(n, 0.0);

  // Fault layer state: per-call injector (its invocation counters make
  // concurrent executions independent and deterministic) and per-operator
  // wasted-attempt counts for retry-cost accounting.
  const bool inject = !options_.fault_plan.empty();
  FaultInjector injector(&options_.fault_plan);
  std::vector<uint16_t> failed_attempts(n, 0);

  // Finalizes a fault-layer failure: fills the report, notifies the
  // breaker clock and the observer, and returns the Unavailable status.
  auto fail_run = [&](FailureReport&& report) -> Status {
    report.failed = true;
    report.backoff_s = result.faults.backoff_s;
    if (options_.health != nullptr) {
      options_.health->AdvanceClock(result.faults.backoff_s);
    }
    if (options_.observer != nullptr) {
      options_.observer->OnExecutionFailure(plan, report);
    }
    Status status = Status::Unavailable(report.message);
    if (failure != nullptr) *failure = std::move(report);
    return status;
  };

  // Runs one operator under the fault layer: breaker gate, injected
  // failures, retry with exponential backoff + deterministic jitter.
  auto run_guarded = [&](OperatorId id,
                         int iteration) -> StatusOr<Dataset> {
    const LogicalOpKind kind = logical.op(id).kind;
    const PlatformId platform = plan.PlatformOf(id);
    if (options_.health != nullptr &&
        !options_.health->AllowRequest(platform)) {
      FailureReport report;
      report.platform = platform;
      report.op = id;
      report.kind = kind;
      report.breaker_open = true;
      report.message = "circuit breaker open for platform " +
                       registry_->platform(platform).name + " at operator " +
                       logical.op(id).name;
      return fail_run(std::move(report));
    }
    const int max_attempts = inject ? std::max(1, options_.retry.max_attempts)
                                    : 1;
    double backoff = options_.retry.initial_backoff_s;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      // Attempt accounting is part of the fault layer: with no FaultPlan
      // the whole FaultStats struct stays zero by contract.
      if (inject) {
        ++result.faults.attempts;
        if (attempt > 0) ++result.faults.retries;
      }
      const FaultInjector::Decision decision =
          inject ? injector.OnAttempt(platform, kind, attempt)
                 : FaultInjector::Decision{};
      if (decision.fail) {
        ++result.faults.faults_injected;
        ++failed_attempts[id];
        if (options_.health != nullptr) {
          options_.health->RecordFailure(platform);
        }
        if (decision.permanent || attempt + 1 == max_attempts) {
          FailureReport report;
          report.platform = platform;
          report.op = id;
          report.kind = kind;
          report.permanent = decision.permanent;
          report.attempts = attempt + 1;
          report.message =
              std::string(decision.permanent ? "permanent fault"
                                             : "retries exhausted") +
              " on platform " + registry_->platform(platform).name +
              " at operator " + logical.op(id).name;
          return fail_run(std::move(report));
        }
        result.faults.backoff_s +=
            backoff * (1.0 + options_.retry.jitter *
                                 injector.JitterDraw(platform, kind, attempt));
        backoff *= options_.retry.backoff_multiplier;
        continue;
      }
      auto out = RunOp(plan, id, outputs, catalog, &rng, iteration);
      if (out.ok() && options_.health != nullptr) {
        options_.health->RecordSuccess(platform);
      }
      return out;
    }
    return Status::Internal("unreachable: retry loop fell through");
  };

  auto record_cards = [&](OperatorId id) {
    double in_sum = 0.0;
    for (OperatorId parent : logical.parents(id)) {
      in_sum += outputs[parent].virtual_cardinality;
    }
    result.observed.input[id] = in_sum;
    result.observed.output[id] = outputs[id].virtual_cardinality;
  };

  for (OperatorId id : order) {
    if (done[id]) continue;
    if (!logical.InLoop(id)) {
      auto out = run_guarded(id, /*iteration=*/0);
      if (!out.ok()) return out.status();
      outputs[id] = std::move(out).value();
      done[id] = 1;
      record_cards(id);
      continue;
    }
    // The first in-loop operator reached in topological order is the
    // LoopBegin (every body operator is downstream of it).
    if (logical.op(id).kind != LogicalOpKind::kLoopBegin) {
      return Status::Internal("loop body operator " + logical.op(id).name +
                              " reached before its LoopBegin");
    }
    const OperatorId begin = id;
    const std::vector<OperatorId> body = logical.LoopBody(begin);
    std::vector<uint8_t> in_body(n, 0);
    OperatorId end = kInvalidOperatorId;
    for (OperatorId b : body) {
      in_body[b] = 1;
      const LogicalOperator& op = logical.op(b);
      if (op.kind == LogicalOpKind::kLoopBegin && b != begin) {
        return Status::Unimplemented("nested loops are not supported");
      }
      if (op.kind == LogicalOpKind::kLoopEnd && op.loop_begin == begin) {
        end = b;
      }
    }
    ROBOPT_CHECK(end != kInvalidOperatorId);

    // Loop-carried value: the LoopBegin's (outside-loop) data parent.
    if (logical.parents(begin).empty()) {
      return Status::InvalidArgument("LoopBegin needs an initial input");
    }
    Dataset carried = outputs[logical.parents(begin)[0]];

    const int iterations = std::max(1, logical.op(begin).loop_iterations);
    for (int iter = 0; iter < iterations; ++iter) {
      outputs[begin] = carried;
      if (iter == 0) record_cards(begin);
      for (OperatorId b : order) {
        if (!in_body[b] || b == begin) continue;
        auto out = run_guarded(b, iter);
        if (!out.ok()) return out.status();
        outputs[b] = std::move(out).value();
        if (iter == 0) record_cards(b);
      }
      carried = outputs[end];
    }
    for (OperatorId b : body) done[b] = 1;
  }

  result.cost = cost_->PlanCost(plan, result.observed);

  // Fault-layer virtual-time overheads: wasted work of failed attempts
  // (each failed attempt re-does — and loses — the operator's work),
  // slowdown rules, and the retry backoff, all itemized in result.faults
  // and folded into total_s.
  if (inject && std::isfinite(result.cost.total_s)) {
    for (const LogicalOperator& op : logical.operators()) {
      const PlatformId platform = plan.PlatformOf(op.id);
      double& op_s = result.cost.op_seconds[op.id];
      const double slowdown = injector.SlowdownFor(platform, op.kind);
      if (slowdown > 1.0) {
        result.faults.slowdown_s += (slowdown - 1.0) * op_s;
        op_s *= slowdown;
      }
      if (failed_attempts[op.id] > 0) {
        result.faults.retry_s += failed_attempts[op.id] * op_s;
      }
    }
    result.cost.total_s += result.faults.slowdown_s + result.faults.retry_s +
                           result.faults.backoff_s;
  }

  if (options_.health != nullptr) {
    if (result.cost.oom) {
      // An OOM is a platform failure for breaker purposes: the platform
      // cannot run this plan at these cardinalities.
      if (result.cost.failed_op != kInvalidOperatorId) {
        options_.health->RecordFailure(plan.PlatformOf(result.cost.failed_op));
      }
    }
    options_.health->AdvanceClock(result.cost.total_s);
  }

  const std::vector<OperatorId> sinks = logical.SinkIds();
  if (!sinks.empty()) result.output = outputs[sinks.front()];
  if (options_.observer != nullptr) options_.observer->OnExecution(plan, result);
  return result;
}

}  // namespace robopt
