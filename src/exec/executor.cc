#include "exec/executor.h"

#include <algorithm>

#include "common/check.h"

namespace robopt {

Executor::Executor(const PlatformRegistry* registry, const VirtualCost* cost,
                   const KernelRegistry* kernels, ExecutorOptions options)
    : registry_(registry),
      cost_(cost),
      kernels_(kernels),
      options_(options) {}

StatusOr<Dataset> Executor::RunOp(const ExecutionPlan& plan, OperatorId id,
                                  const std::vector<Dataset>& outputs,
                                  const DataCatalog& catalog, Rng* rng,
                                  int iteration) const {
  const LogicalPlan& logical = plan.logical_plan();
  const LogicalOperator& op = logical.op(id);

  // Sources pull from the catalog when bound; otherwise a named kernel may
  // synthesize the data.
  if (IsSource(op.kind)) {
    auto it = catalog.by_op.find(id);
    if (it != catalog.by_op.end()) {
      Dataset dataset = it->second;
      if (dataset.virtual_cardinality <= 0) {
        dataset.virtual_cardinality =
            static_cast<double>(dataset.rows.size());
      }
      return dataset;
    }
  }

  KernelContext ctx;
  ctx.op = &op;
  ctx.rng = rng;
  ctx.iteration = iteration;
  for (OperatorId parent : logical.parents(id)) {
    ctx.inputs.push_back(&outputs[parent]);
  }
  for (OperatorId parent : logical.side_parents(id)) {
    ctx.side_inputs.push_back(&outputs[parent]);
  }

  const Kernel* kernel = nullptr;
  if (!op.kernel.empty()) {
    if (kernels_ != nullptr) kernel = kernels_->Find(op.kernel);
    if (kernel == nullptr) kernel = KernelRegistry::Global().Find(op.kernel);
    if (kernel == nullptr) {
      return Status::NotFound("kernel '" + op.kernel + "' for operator " +
                              op.name);
    }
  }
  if (kernel != nullptr) return (*kernel)(ctx);
  return DefaultKernel(ctx);
}

StatusOr<ExecResult> Executor::Execute(const ExecutionPlan& plan,
                                       const DataCatalog& catalog) const {
  const LogicalPlan& logical = plan.logical_plan();
  ROBOPT_RETURN_IF_ERROR(logical.Validate());
  ROBOPT_RETURN_IF_ERROR(plan.Validate());

  const int n = logical.num_operators();
  const std::vector<OperatorId> order = logical.TopologicalOrder();
  std::vector<Dataset> outputs(n);
  std::vector<uint8_t> done(n, 0);
  Rng rng(options_.seed);

  ExecResult result;
  result.observed.input.assign(n, 0.0);
  result.observed.output.assign(n, 0.0);

  auto record_cards = [&](OperatorId id) {
    double in_sum = 0.0;
    for (OperatorId parent : logical.parents(id)) {
      in_sum += outputs[parent].virtual_cardinality;
    }
    result.observed.input[id] = in_sum;
    result.observed.output[id] = outputs[id].virtual_cardinality;
  };

  for (OperatorId id : order) {
    if (done[id]) continue;
    if (!logical.InLoop(id)) {
      auto out = RunOp(plan, id, outputs, catalog, &rng, /*iteration=*/0);
      if (!out.ok()) return out.status();
      outputs[id] = std::move(out).value();
      done[id] = 1;
      record_cards(id);
      continue;
    }
    // The first in-loop operator reached in topological order is the
    // LoopBegin (every body operator is downstream of it).
    if (logical.op(id).kind != LogicalOpKind::kLoopBegin) {
      return Status::Internal("loop body operator " + logical.op(id).name +
                              " reached before its LoopBegin");
    }
    const OperatorId begin = id;
    const std::vector<OperatorId> body = logical.LoopBody(begin);
    std::vector<uint8_t> in_body(n, 0);
    OperatorId end = kInvalidOperatorId;
    for (OperatorId b : body) {
      in_body[b] = 1;
      const LogicalOperator& op = logical.op(b);
      if (op.kind == LogicalOpKind::kLoopBegin && b != begin) {
        return Status::Unimplemented("nested loops are not supported");
      }
      if (op.kind == LogicalOpKind::kLoopEnd && op.loop_begin == begin) {
        end = b;
      }
    }
    ROBOPT_CHECK(end != kInvalidOperatorId);

    // Loop-carried value: the LoopBegin's (outside-loop) data parent.
    if (logical.parents(begin).empty()) {
      return Status::InvalidArgument("LoopBegin needs an initial input");
    }
    Dataset carried = outputs[logical.parents(begin)[0]];

    const int iterations = std::max(1, logical.op(begin).loop_iterations);
    for (int iter = 0; iter < iterations; ++iter) {
      outputs[begin] = carried;
      if (iter == 0) record_cards(begin);
      for (OperatorId b : order) {
        if (!in_body[b] || b == begin) continue;
        auto out = RunOp(plan, b, outputs, catalog, &rng, iter);
        if (!out.ok()) return out.status();
        outputs[b] = std::move(out).value();
        if (iter == 0) record_cards(b);
      }
      carried = outputs[end];
    }
    for (OperatorId b : body) done[b] = 1;
  }

  result.cost = cost_->PlanCost(plan, result.observed);

  const std::vector<OperatorId> sinks = logical.SinkIds();
  if (!sinks.empty()) result.output = outputs[sinks.front()];
  if (options_.observer != nullptr) options_.observer->OnExecution(plan, result);
  return result;
}

}  // namespace robopt
