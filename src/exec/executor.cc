#include "exec/executor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace robopt {

namespace {

/// End-of-call executor counters. Shared-executor aggregation happens here:
/// concurrent Execute() calls on one registry land on sharded relaxed
/// atomics, never on a shared mutable struct.
void PublishExecMetrics(MetricsRegistry* metrics, const FaultStats& faults,
                        size_t num_ops, bool failed, bool breaker_rejected,
                        bool oom, double wall_us) {
  // Zero adds still create the series, so scrapes can tell "executed, no
  // faults" from "nothing executed".
  auto add = [metrics](const char* name, uint64_t n) {
    if (Counter* counter = metrics->GetCounter(name)) counter->Add(n);
  };
  add("robopt_exec_calls_total", 1);
  add("robopt_exec_ops_total", num_ops);
  add("robopt_exec_attempts_total", static_cast<uint64_t>(faults.attempts));
  add("robopt_exec_retries_total", static_cast<uint64_t>(faults.retries));
  add("robopt_exec_faults_injected_total",
      static_cast<uint64_t>(faults.faults_injected));
  add("robopt_exec_failures_total", failed ? 1 : 0);
  add("robopt_exec_breaker_rejections_total", breaker_rejected ? 1 : 0);
  add("robopt_exec_oom_total", oom ? 1 : 0);
  if (Histogram* latency = metrics->GetHistogram(
          "robopt_exec_wall_us", Histogram::LatencyBucketsUs())) {
    latency->Observe(wall_us);
  }
}

}  // namespace

Executor::Executor(const PlatformRegistry* registry, const VirtualCost* cost,
                   const KernelRegistry* kernels, ExecutorOptions options)
    : registry_(registry),
      cost_(cost),
      kernels_(kernels),
      options_(options) {}

StatusOr<Dataset> Executor::RunOp(const ExecutionPlan& plan, OperatorId id,
                                  const std::vector<Dataset>& outputs,
                                  const DataCatalog& catalog, Rng* rng,
                                  int iteration) const {
  const LogicalPlan& logical = plan.logical_plan();
  const LogicalOperator& op = logical.op(id);

  // Sources pull from the catalog when bound; otherwise a named kernel may
  // synthesize the data.
  if (IsSource(op.kind)) {
    auto it = catalog.by_op.find(id);
    if (it != catalog.by_op.end()) {
      Dataset dataset = it->second;
      if (dataset.virtual_cardinality <= 0) {
        dataset.virtual_cardinality =
            static_cast<double>(dataset.rows.size());
      }
      return dataset;
    }
  }

  KernelContext ctx;
  ctx.op = &op;
  ctx.rng = rng;
  ctx.iteration = iteration;
  for (OperatorId parent : logical.parents(id)) {
    ctx.inputs.push_back(&outputs[parent]);
  }
  for (OperatorId parent : logical.side_parents(id)) {
    ctx.side_inputs.push_back(&outputs[parent]);
  }

  const Kernel* kernel = nullptr;
  if (!op.kernel.empty()) {
    if (kernels_ != nullptr) kernel = kernels_->Find(op.kernel);
    if (kernel == nullptr) kernel = KernelRegistry::Global().Find(op.kernel);
    if (kernel == nullptr) {
      return Status::NotFound("kernel '" + op.kernel + "' for operator " +
                              op.name);
    }
  }
  if (kernel != nullptr) return (*kernel)(ctx);
  return DefaultKernel(ctx);
}

StatusOr<ExecResult> Executor::Execute(const ExecutionPlan& plan,
                                       const DataCatalog& catalog,
                                       FailureReport* failure) const {
  const LogicalPlan& logical = plan.logical_plan();
  ROBOPT_RETURN_IF_ERROR(logical.Validate());
  ROBOPT_RETURN_IF_ERROR(plan.Validate());

  const int n = logical.num_operators();
  const std::vector<OperatorId> order = logical.TopologicalOrder();
  std::vector<Dataset> outputs(n);
  std::vector<uint8_t> done(n, 0);
  Rng rng(options_.seed);

  ExecResult result;
  result.observed.input.assign(n, 0.0);
  result.observed.output.assign(n, 0.0);

  // Observability for this call: a root "execute" span whose children are
  // one span per operator (stamped with wall AND virtual clocks, emitted
  // post-hoc once the virtual cost is known), a per-call profile, and
  // end-of-call counters. All gated below; the computed output, cost and
  // stats are bit-identical with observability on or off.
  const bool obs_on = ROBOPT_OBS_ON(options_.obs);
  Tracer* const tracer = obs_on ? options_.obs.tracer : nullptr;
  uint64_t trace_id = 0;
  if (tracer != nullptr) {
    trace_id = options_.obs.trace_id != 0 ? options_.obs.trace_id
                                          : tracer->NewTrace();
  }
  SpanScope exec_span(tracer, trace_id, options_.obs.parent_span, "execute");
  ExecProfile* const prof =
      obs_on && options_.obs.profile ? &result.profile : nullptr;
  if (prof != nullptr) {
    prof->enabled = true;
    prof->trace_id = trace_id;
  }
  const bool timed = tracer != nullptr || prof != nullptr;
  Stopwatch call_clock;
  // Per-operator wall accounting (attempts and loop iterations folded in).
  std::vector<double> op_wall_us;
  std::vector<double> op_start_us;
  std::vector<int> op_attempts;
  if (timed) {
    op_wall_us.assign(n, 0.0);
    op_start_us.assign(n, -1.0);
    op_attempts.assign(n, 0);
  }

  // Fault layer state: per-call injector (its invocation counters make
  // concurrent executions independent and deterministic) and per-operator
  // wasted-attempt counts for retry-cost accounting.
  const bool inject = !options_.fault_plan.empty();
  FaultInjector injector(&options_.fault_plan);
  std::vector<uint16_t> failed_attempts(n, 0);

  // Finalizes a fault-layer failure: fills the report, notifies the
  // breaker clock and the observer, and returns the Unavailable status.
  auto fail_run = [&](FailureReport&& report) -> Status {
    report.failed = true;
    report.backoff_s = result.faults.backoff_s;
    if (options_.health != nullptr) {
      options_.health->AdvanceClock(result.faults.backoff_s);
    }
    if (options_.observer != nullptr) {
      options_.observer->OnExecutionFailure(plan, report);
    }
    if (obs_on && options_.obs.metrics != nullptr) {
      PublishExecMetrics(options_.obs.metrics, result.faults,
                         static_cast<size_t>(n), /*failed=*/true,
                         report.breaker_open, /*oom=*/false,
                         call_clock.ElapsedMicros());
    }
    if (tracer != nullptr) {
      exec_span.SetArgA("failed", 1);
      exec_span.SetArgB("breaker_open", report.breaker_open ? 1 : 0);
    }
    Status status = Status::Unavailable(report.message);
    if (failure != nullptr) *failure = std::move(report);
    return status;
  };

  // Runs one operator under the fault layer: breaker gate, injected
  // failures, retry with exponential backoff + deterministic jitter.
  auto run_guarded = [&](OperatorId id,
                         int iteration) -> StatusOr<Dataset> {
    const LogicalOpKind kind = logical.op(id).kind;
    const PlatformId platform = plan.PlatformOf(id);
    if (timed && op_start_us[id] < 0.0) {
      op_start_us[id] = tracer != nullptr ? tracer->NowMicros() : 0.0;
    }
    Stopwatch op_clock;
    if (options_.health != nullptr &&
        !options_.health->AllowRequest(platform)) {
      FailureReport report;
      report.platform = platform;
      report.op = id;
      report.kind = kind;
      report.breaker_open = true;
      report.message = "circuit breaker open for platform " +
                       registry_->platform(platform).name + " at operator " +
                       logical.op(id).name;
      return fail_run(std::move(report));
    }
    const int max_attempts = inject ? std::max(1, options_.retry.max_attempts)
                                    : 1;
    double backoff = options_.retry.initial_backoff_s;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      if (timed) ++op_attempts[id];
      // Attempt accounting is part of the fault layer: with no FaultPlan
      // the whole FaultStats struct stays zero by contract.
      if (inject) {
        ++result.faults.attempts;
        if (attempt > 0) ++result.faults.retries;
      }
      const FaultInjector::Decision decision =
          inject ? injector.OnAttempt(platform, kind, attempt)
                 : FaultInjector::Decision{};
      if (decision.fail) {
        ++result.faults.faults_injected;
        ++failed_attempts[id];
        if (options_.health != nullptr) {
          options_.health->RecordFailure(platform);
        }
        if (decision.permanent || attempt + 1 == max_attempts) {
          FailureReport report;
          report.platform = platform;
          report.op = id;
          report.kind = kind;
          report.permanent = decision.permanent;
          report.attempts = attempt + 1;
          report.message =
              std::string(decision.permanent ? "permanent fault"
                                             : "retries exhausted") +
              " on platform " + registry_->platform(platform).name +
              " at operator " + logical.op(id).name;
          return fail_run(std::move(report));
        }
        result.faults.backoff_s +=
            backoff * (1.0 + options_.retry.jitter *
                                 injector.JitterDraw(platform, kind, attempt));
        backoff *= options_.retry.backoff_multiplier;
        continue;
      }
      if (timed) op_clock.Restart();
      auto out = RunOp(plan, id, outputs, catalog, &rng, iteration);
      if (timed) op_wall_us[id] += op_clock.ElapsedMicros();
      if (out.ok() && options_.health != nullptr) {
        options_.health->RecordSuccess(platform);
      }
      return out;
    }
    return Status::Internal("unreachable: retry loop fell through");
  };

  auto record_cards = [&](OperatorId id) {
    double in_sum = 0.0;
    for (OperatorId parent : logical.parents(id)) {
      in_sum += outputs[parent].virtual_cardinality;
    }
    result.observed.input[id] = in_sum;
    result.observed.output[id] = outputs[id].virtual_cardinality;
  };

  for (OperatorId id : order) {
    if (done[id]) continue;
    if (!logical.InLoop(id)) {
      auto out = run_guarded(id, /*iteration=*/0);
      if (!out.ok()) return out.status();
      outputs[id] = std::move(out).value();
      done[id] = 1;
      record_cards(id);
      continue;
    }
    // The first in-loop operator reached in topological order is the
    // LoopBegin (every body operator is downstream of it).
    if (logical.op(id).kind != LogicalOpKind::kLoopBegin) {
      return Status::Internal("loop body operator " + logical.op(id).name +
                              " reached before its LoopBegin");
    }
    const OperatorId begin = id;
    const std::vector<OperatorId> body = logical.LoopBody(begin);
    std::vector<uint8_t> in_body(n, 0);
    OperatorId end = kInvalidOperatorId;
    for (OperatorId b : body) {
      in_body[b] = 1;
      const LogicalOperator& op = logical.op(b);
      if (op.kind == LogicalOpKind::kLoopBegin && b != begin) {
        return Status::Unimplemented("nested loops are not supported");
      }
      if (op.kind == LogicalOpKind::kLoopEnd && op.loop_begin == begin) {
        end = b;
      }
    }
    ROBOPT_CHECK(end != kInvalidOperatorId);

    // Loop-carried value: the LoopBegin's (outside-loop) data parent.
    if (logical.parents(begin).empty()) {
      return Status::InvalidArgument("LoopBegin needs an initial input");
    }
    Dataset carried = outputs[logical.parents(begin)[0]];

    const int iterations = std::max(1, logical.op(begin).loop_iterations);
    for (int iter = 0; iter < iterations; ++iter) {
      outputs[begin] = carried;
      if (iter == 0) record_cards(begin);
      for (OperatorId b : order) {
        if (!in_body[b] || b == begin) continue;
        auto out = run_guarded(b, iter);
        if (!out.ok()) return out.status();
        outputs[b] = std::move(out).value();
        if (iter == 0) record_cards(b);
      }
      carried = outputs[end];
    }
    for (OperatorId b : body) done[b] = 1;
  }

  result.cost = cost_->PlanCost(plan, result.observed);

  // Fault-layer virtual-time overheads: wasted work of failed attempts
  // (each failed attempt re-does — and loses — the operator's work),
  // slowdown rules, and the retry backoff, all itemized in result.faults
  // and folded into total_s.
  if (inject && std::isfinite(result.cost.total_s)) {
    for (const LogicalOperator& op : logical.operators()) {
      const PlatformId platform = plan.PlatformOf(op.id);
      double& op_s = result.cost.op_seconds[op.id];
      const double slowdown = injector.SlowdownFor(platform, op.kind);
      if (slowdown > 1.0) {
        result.faults.slowdown_s += (slowdown - 1.0) * op_s;
        op_s *= slowdown;
      }
      if (failed_attempts[op.id] > 0) {
        result.faults.retry_s += failed_attempts[op.id] * op_s;
      }
    }
    result.cost.total_s += result.faults.slowdown_s + result.faults.retry_s +
                           result.faults.backoff_s;
  }

  if (options_.health != nullptr) {
    if (result.cost.oom) {
      // An OOM is a platform failure for breaker purposes: the platform
      // cannot run this plan at these cardinalities.
      if (result.cost.failed_op != kInvalidOperatorId) {
        options_.health->RecordFailure(plan.PlatformOf(result.cost.failed_op));
      }
    }
    options_.health->AdvanceClock(result.cost.total_s);
  }

  const std::vector<OperatorId> sinks = logical.SinkIds();
  if (!sinks.empty()) result.output = outputs[sinks.front()];

  // Observability tail. The per-operator spans are emitted here — not
  // inside run_guarded — because an operator's virtual seconds are only
  // known once PlanCost has run; each span carries the operator's wall
  // interval and its interval on the virtual timeline (a running cursor
  // over op_seconds in topological order, the order operators actually
  // ran). Conversions get one aggregate virtual-only span at the end.
  if (timed) {
    const double call_wall_us = call_clock.ElapsedMicros();
    double virt_cursor = 0.0;
    for (OperatorId id : order) {
      const double virt_s = static_cast<size_t>(id) <
                                    result.cost.op_seconds.size() &&
                                    std::isfinite(result.cost.op_seconds[id])
                                ? result.cost.op_seconds[id]
                                : 0.0;
      if (prof != nullptr) {
        OpProfile op;
        op.op = id;
        op.platform = plan.PlatformOf(id);
        op.attempts = op_attempts[id];
        op.wall_us = op_wall_us[id];
        op.virt_s = virt_s;
        prof->ops.push_back(op);
      }
      if (tracer != nullptr) {
        SpanRecord span;
        span.trace_id = trace_id;
        span.span_id = tracer->NewSpanId();
        span.parent_id = exec_span.id();
        span.name = ToString(logical.op(id).kind);
        span.start_us = op_start_us[id] < 0.0 ? 0.0 : op_start_us[id];
        span.dur_us = op_wall_us[id];
        span.virt_start_s = virt_cursor;
        span.virt_dur_s = virt_s;
        span.tid = TraceThreadId();
        span.arg_name_a = "attempts";
        span.arg_a = op_attempts[id];
        span.arg_name_b = "platform";
        span.arg_b = plan.PlatformOf(id);
        tracer->Record(span);
      }
      virt_cursor += virt_s;
    }
    if (tracer != nullptr && result.cost.conversion_s > 0.0) {
      SpanRecord span;
      span.trace_id = trace_id;
      span.span_id = tracer->NewSpanId();
      span.parent_id = exec_span.id();
      span.name = "convert";
      span.start_us = tracer->NowMicros();
      span.dur_us = 0.0;  // Conversions carry virtual time only.
      span.virt_start_s = virt_cursor;
      span.virt_dur_s = result.cost.conversion_s;
      span.tid = TraceThreadId();
      tracer->Record(span);
    }
    if (prof != nullptr) {
      prof->retries = result.faults.retries;
      prof->faults_injected = result.faults.faults_injected;
      prof->conversion_virt_s = result.cost.conversion_s;
      prof->total_wall_us = call_wall_us;
    }
    if (tracer != nullptr) {
      exec_span.SetArgA("ops", n);
      exec_span.SetArgB("oom", result.cost.oom ? 1 : 0);
      if (std::isfinite(result.cost.total_s)) {
        exec_span.SetVirtual(0.0, result.cost.total_s);
      }
      exec_span.End();
    }
  }
  if (obs_on && options_.obs.metrics != nullptr) {
    PublishExecMetrics(options_.obs.metrics, result.faults,
                       static_cast<size_t>(n), /*failed=*/false,
                       /*breaker_rejected=*/false, result.cost.oom,
                       call_clock.ElapsedMicros());
  }

  if (options_.observer != nullptr) options_.observer->OnExecution(plan, result);
  return result;
}

}  // namespace robopt
