#ifndef ROBOPT_EXEC_PERF_PROFILE_H_
#define ROBOPT_EXEC_PERF_PROFILE_H_

#include <array>
#include <string>

#include "plan/operator_kind.h"

namespace robopt {

/// Ground-truth performance characteristics of one simulated platform.
///
/// These profiles play the role of the paper's physical cluster: they define
/// what a query *actually* costs, and neither optimizer gets to read them —
/// RHEEMix approximates them with linear cost formulas, Robopt learns them
/// from execution logs. The shapes (job startup vs. parallel throughput,
/// shuffle nonlinearity, iteration overheads, memory ceilings) are the ones
/// that produce the crossovers the paper's evaluation exercises.
struct PlatformProfile {
  std::string name;

  /// One-time job initialization (the dominant term for small inputs; the
  /// paper's Spark pays seconds here, its Java engine almost nothing).
  double startup_s = 0.1;
  /// Scheduling overhead per operator instance per execution.
  double stage_overhead_s = 0.01;
  /// Baseline CPU per tuple for a linear-complexity UDF, nanoseconds.
  double tuple_cpu_ns = 150.0;
  /// Maximum effective speedup from parallelism.
  double parallelism = 1.0;
  /// Tuples needed to saturate one additional worker; small inputs cannot
  /// exploit a cluster.
  double parallel_chunk = 20000.0;
  /// Extra per-tuple cost of partitioning operators (ReduceBy, GroupBy,
  /// Join, Sort, Distinct), multiplied by log2(n) — the executor's
  /// n·log n nonlinearity.
  double shuffle_ns_per_tuple = 300.0;
  /// Source/sink IO per byte.
  double io_ns_per_byte = 1.0;
  /// Input bytes beyond which a single-node platform fails (out-of-memory);
  /// distributed platforms degrade (spill) instead.
  double mem_capacity_bytes = 25e9;
  /// Beyond mem_capacity_bytes, distributed platforms multiply shuffle costs
  /// by this spill factor; single-node and relational platforms abort.
  double spill_factor = 3.0;
  /// Per-loop-iteration driver/scheduling overhead.
  double loop_overhead_s = 0.01;
  /// Fixed cost of materializing a broadcast per (re-)distribution.
  double broadcast_fixed_s = 0.01;
  /// Per-byte cost of broadcasting.
  double broadcast_ns_per_byte = 1.0;
  /// Per-byte rate for moving data into/out of this platform (conversions).
  double move_ns_per_byte = 1.5;
  /// Fixed latency contribution of a conversion touching this platform.
  double move_fixed_s = 0.01;
  /// Multiplier applied to a tuple's UDF work by complexity class, indexed
  /// by UdfComplexity (none, log, linear, quadratic, super-quadratic).
  std::array<double, 5> udf_factor = {0.3, 0.7, 1.0, 5.0, 20.0};
  /// Per-logical-operator-kind throughput multiplier (platform diversity:
  /// e.g. a DBMS filters cheaply but runs opaque UDFs slowly).
  std::array<double, kNumLogicalOpKinds> kind_multiplier = [] {
    std::array<double, kNumLogicalOpKinds> m{};
    m.fill(1.0);
    return m;
  }();

  /// Effective parallel speedup when processing `tuples` tuples.
  double EffectiveParallelism(double tuples) const {
    const double usable = tuples / parallel_chunk;
    if (usable < 1.0) return 1.0;
    return usable > parallelism ? parallelism : usable;
  }

  void SetKindMultiplier(LogicalOpKind kind, double factor) {
    kind_multiplier[static_cast<int>(kind)] = factor;
  }
  double KindMultiplier(LogicalOpKind kind) const {
    return kind_multiplier[static_cast<int>(kind)];
  }

  /// Built-in profiles for the paper's five platforms, keyed by the names
  /// used in PlatformRegistry::Default ("Java", "Spark", "Flink",
  /// "Postgres", "GraphX"). Unknown names get a generic distributed profile
  /// perturbed deterministically by the name hash (synthetic registries).
  static PlatformProfile ForName(const std::string& name);
};

}  // namespace robopt

#endif  // ROBOPT_EXEC_PERF_PROFILE_H_
