#ifndef ROBOPT_EXEC_KERNEL_H_
#define ROBOPT_EXEC_KERNEL_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "exec/record.h"
#include "plan/logical_plan.h"

namespace robopt {

/// Everything a kernel needs to execute one logical operator once.
struct KernelContext {
  const LogicalOperator* op = nullptr;
  /// Main data inputs, in parent order.
  std::vector<const Dataset*> inputs;
  /// Broadcast side inputs, in side-parent order.
  std::vector<const Dataset*> side_inputs;
  Rng* rng = nullptr;
  /// Loop iteration index (0 outside loops).
  int iteration = 0;
};

/// A kernel consumes the context's inputs and produces the operator's output
/// dataset, including its virtual cardinality.
using Kernel = std::function<StatusOr<Dataset>(const KernelContext&)>;

/// Named kernels let workloads attach real behavior (tokenization, k-means
/// assignment, gradient steps, ...) to logical operators via
/// LogicalOperator::kernel. Operators with no named kernel fall back to a
/// generic kernel for their kind (see DefaultKernel), which preserves
/// cardinality semantics so that synthetic plans still execute.
class KernelRegistry {
 public:
  KernelRegistry() = default;

  void Register(std::string name, Kernel kernel);
  const Kernel* Find(const std::string& name) const;

  /// Process-wide registry used by the workloads library.
  static KernelRegistry& Global();

 private:
  std::map<std::string, Kernel> kernels_;
};

/// Generic kernel for a logical operator kind: filters by hashing,
/// hash-joins on Record::key, reduces by summing Record::num, etc.
StatusOr<Dataset> DefaultKernel(const KernelContext& ctx);

/// Scales a virtual cardinality by the physically observed selectivity
/// (out_rows / in_rows), falling back to `fallback_selectivity` when the
/// physical input is empty.
double ScaleVirtual(double in_virtual, size_t in_rows, size_t out_rows,
                    double fallback_selectivity);

}  // namespace robopt

#endif  // ROBOPT_EXEC_KERNEL_H_
